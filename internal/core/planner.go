package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dynsample/internal/bitmask"
	"dynsample/internal/engine"
	"dynsample/internal/stats"
)

// This file implements the cost-based sample planner: the runtime half of the
// paper's analytical error model (§4.4) turned into a per-query optimizer.
// A caller states an error bound (relative error at a confidence level)
// and/or a time bound; the planner enumerates candidate plans — subsets of
// the relevant small group tables × a sampling fraction of the overall
// sample × the exact fallback — predicts each candidate's error from the
// §4.4 model and its latency from calibrated scan-cost statistics, and picks
// the cheapest plan predicted to satisfy the bounds. docs/ACCURACY.md is the
// written contract for what these predictions do and do not guarantee.

// Bounds are the per-request quality/latency requirements of a bounded
// query. The zero value means "no bounds": the strategy's default plan.
type Bounds struct {
	// ErrorBound is the requested maximum relative error per group at the
	// Confidence level, e.g. 0.05 for ±5%. Zero means unbounded error.
	ErrorBound float64
	// TimeBound is the requested maximum predicted execution latency. Zero
	// means unbounded time.
	TimeBound time.Duration
	// Confidence is the confidence level the error bound (and the answer's
	// intervals) are stated at. Zero means the prepared state's configured
	// level (default 0.95).
	Confidence float64
}

// IsZero reports whether no bound was requested.
func (b Bounds) IsZero() bool { return b.ErrorBound == 0 && b.TimeBound == 0 }

// PlanCandidate is one plan the planner considered, with its predictions.
type PlanCandidate struct {
	// Name identifies the plan, e.g. "sg_store_region+sg_overall/0.25" or
	// "exact".
	Name string `json:"plan"`
	// Tables are the small group tables the plan reads (empty for the
	// overall-only and exact plans).
	Tables []string `json:"tables,omitempty"`
	// OverallFraction is the fraction of the overall sample scanned (the
	// sampling-fraction knob); 0 for the exact plan.
	OverallFraction float64 `json:"overall_fraction,omitempty"`
	// Rows is the total rows the plan scans, known from the metadata without
	// executing anything.
	Rows int64 `json:"rows"`
	// PredictedError is the §4.4-model prediction of the answer's mean
	// per-group relative error at the confidence level.
	PredictedError float64 `json:"predicted_error"`
	// PredictedLatency is Rows divided by the calibrated scan throughput.
	PredictedLatency time.Duration `json:"-"`
	// PredictedLatencyMicros mirrors PredictedLatency for JSON clients.
	PredictedLatencyMicros int64 `json:"predicted_latency_micros"`
	// Exact marks the exact-fallback plan (full base-table scan, zero error).
	Exact bool `json:"exact,omitempty"`
	// Feasible reports whether the plan was predicted to satisfy the
	// requested bounds.
	Feasible bool `json:"feasible"`
}

// PlanDecision records what the planner did for one bounded query: every
// candidate considered, the chosen plan, and the realized (achieved) error.
type PlanDecision struct {
	// Bounds are the requested bounds, with Confidence resolved.
	Bounds Bounds `json:"-"`
	// Chosen is the selected candidate.
	Chosen PlanCandidate `json:"chosen"`
	// Candidates lists every plan considered, cheapest first.
	Candidates []PlanCandidate `json:"candidates,omitempty"`
	// AchievedError is the realized mean per-group relative error, estimated
	// from the answer's confidence intervals (half-width / estimate, capped
	// at 1; exact groups contribute 0). It is an online estimate, not a
	// comparison against ground truth — see docs/ACCURACY.md.
	AchievedError float64 `json:"achieved_error"`
	// Caveats list why the prediction may be unreliable for this query
	// (selection predicates, columns without metadata, multi-level bands).
	Caveats []string `json:"caveats,omitempty"`
}

// UnsatisfiableBoundsError reports that no candidate plan — including the
// exact fallback, when available — was predicted to satisfy the requested
// bounds. It carries the best achievable figures so clients can retry with
// realistic bounds.
type UnsatisfiableBoundsError struct {
	// Bounds are the bounds that could not be met.
	Bounds Bounds
	// BestError is the smallest predicted error among candidates that fit
	// the time bound (among all candidates when no time bound was given).
	BestError float64
	// BestLatency is the smallest predicted latency among candidates that
	// meet the error bound (among all candidates when no error bound was
	// given).
	BestLatency time.Duration
}

// Error implements error.
func (e *UnsatisfiableBoundsError) Error() string {
	parts := make([]string, 0, 2)
	if e.Bounds.ErrorBound > 0 {
		parts = append(parts, fmt.Sprintf("error_bound %g (best achievable %.4g)", e.Bounds.ErrorBound, e.BestError))
	}
	if e.Bounds.TimeBound > 0 {
		parts = append(parts, fmt.Sprintf("time_bound %v (best achievable %v)", e.Bounds.TimeBound, e.BestLatency.Round(time.Microsecond)))
	}
	return "core: no plan satisfies " + strings.Join(parts, " and ")
}

// costRate is the calibrated scan-throughput estimate: an exponentially
// weighted moving average of observed rows/second over executed plans,
// updated lock-free so concurrent queries can feed it.
type costRate struct {
	bits atomic.Uint64 // math.Float64bits of the EWMA; 0 = no observations
}

// observe folds one plan execution into the moving average.
func (c *costRate) observe(rows int64, elapsed time.Duration) {
	if rows <= 0 || elapsed <= 0 {
		return
	}
	r := float64(rows) / elapsed.Seconds()
	for {
		old := c.bits.Load()
		next := r
		if old != 0 {
			next = 0.7*math.Float64frombits(old) + 0.3*r
		}
		if c.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// estimate returns the calibrated rate, or ok=false before any observation.
func (c *costRate) estimate() (float64, bool) {
	bits := c.bits.Load()
	if bits == 0 {
		return 0, false
	}
	return math.Float64frombits(bits), true
}

// countBucket summarises a band of similarly-sized groups: vals distinct
// values averaging rows base rows each.
type countBucket struct {
	rows float64
	vals float64
}

// colDist is the planner's compact marginal distribution for one column of
// S: log-bucketed estimated frequencies of the common values (recovered from
// the overall sample, so it works for states restored from disk and tracks
// ingested data up to the last reservoir refresh) plus the rare-side summary
// from the exact pre-processing metadata.
type colDist struct {
	common     []countBucket
	rareVals   float64
	rareRows   float64
	multiLevel bool
	// outsideS marks a column with no small group table: its marginal is
	// estimated purely from the overall sample, so values too rare to be
	// sampled are invisible and the prediction can be optimistic.
	outsideS bool
}

// plannerStats is the lazily built, immutable-after-build planner input for
// one prepared sample family. It is shared (by pointer) across the
// copy-on-write clones the online ingest path publishes, so the calibrated
// scan rate survives sample maintenance; the histograms are rebuilt only by
// a full rebuild, which is exactly when the metadata they derive from
// changes. See docs/ACCURACY.md for the staleness caveats.
type plannerStats struct {
	once sync.Once
	rate costRate

	cols        map[string]colDist
	baseRows    float64
	overallRows int64
	uniform     bool // overall sample is flat, unweighted, uniformly drawn
}

// build derives the per-column marginal distributions by one pass over the
// overall sample per column of S.
func (ps *plannerStats) build(p *smallGroupPrepared) {
	ps.cols = make(map[string]colDist, len(p.meta.Columns()))
	src := p.overall.src
	ps.overallRows = int64(src.NumRows())
	otbl, flat := src.(*engine.Table)
	ps.uniform = flat && otbl.Weights == nil && p.overallScale > 0
	ps.baseRows = float64(p.meta.BaseRows)
	if ps.uniform {
		// The live row count: overallScale is maintained across ingest.
		ps.baseRows = p.overallScale * float64(ps.overallRows)
	}
	scale := p.overallScale
	if scale <= 0 {
		scale = 1
	}
	for _, cm := range p.meta.Columns() {
		acc, err := src.Accessor(cm.Column)
		if err != nil {
			continue // renormalized layouts may not expose every column here
		}
		est := make(map[engine.Value]float64, len(cm.Common))
		for row := 0; row < int(ps.overallRows); row++ {
			v := acc.Value(row)
			if _, common := cm.Common[v]; common {
				est[v] += src.RowWeight(row) * scale
			}
		}
		// Common values the sample missed still exist; credit them one
		// sample-row equivalent so they land in the smallest bucket.
		for v := range cm.Common {
			if _, ok := est[v]; !ok {
				est[v] = scale
			}
		}
		d := colDist{multiLevel: cm.Exact != nil, common: bucketize(est)}
		d.rareVals = float64(cm.Distinct - len(cm.Common))
		d.rareRows = float64(cm.RareRows)
		if d.rareVals <= 0 && d.rareRows > 0 {
			d.rareVals = 1
		}
		ps.cols[cm.Column] = d
	}
	// Columns outside S (no rare values worth a table, or too many distinct
	// values) still split group-bys. When the overall sample is a flat table
	// we can estimate their whole marginal from the sample — values it missed
	// stay invisible, which predictError surfaces as a caveat.
	if !flat {
		return
	}
	for _, col := range otbl.ColumnNames() {
		if _, done := ps.cols[col]; done {
			continue
		}
		acc, err := src.Accessor(col)
		if err != nil {
			continue
		}
		est := make(map[engine.Value]float64)
		for row := 0; row < int(ps.overallRows); row++ {
			est[acc.Value(row)] += src.RowWeight(row) * scale
		}
		ps.cols[col] = colDist{common: bucketize(est), outsideS: true}
	}
}

// bucketize collapses estimated per-value frequencies into log2-spaced
// bands of similarly sized groups.
func bucketize(est map[engine.Value]float64) []countBucket {
	byBucket := make(map[int]*countBucket)
	for _, c := range est {
		if c <= 0 {
			continue
		}
		k := int(math.Floor(math.Log2(c)))
		b := byBucket[k]
		if b == nil {
			b = &countBucket{}
			byBucket[k] = b
		}
		b.rows += c
		b.vals++
	}
	out := make([]countBucket, 0, len(byBucket))
	for _, b := range byBucket {
		out = append(out, countBucket{rows: b.rows / b.vals, vals: b.vals})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].rows < out[j].rows })
	return out
}

// marginal is one column's bucket list for the combo enumeration.
type marginal struct {
	col     string
	buckets []comboBucket
}

type comboBucket struct {
	p    float64 // probability a random base row carries a value of this band
	vals float64 // distinct values in the band
	rare bool    // band is stored in the column's small group table
}

// maxErrorCombos caps the bucket-combination enumeration; beyond it the
// per-column distributions collapse to two-point summaries.
const maxErrorCombos = 50000

// predictError evaluates the §4.4 error model online: the expected mean
// per-group relative error at confidence z of answering q from sampleRows
// overall-sample rows, with the small group tables of the columns in used
// answering their rare bands exactly. The model mirrors
// internal/model.Evaluate — per-group squared relative error (1−p)/(s·σ·p)
// capped at 1, groups weighted by their existence probability — with the
// group-probability distribution taken from the live marginals instead of an
// analytical two-point assumption, independence across grouping columns, and
// selectivity σ = 1 (see docs/ACCURACY.md for when that is unreliable).
func (ps *plannerStats) predictError(q *engine.Query, used map[string]bool, sampleRows float64, z float64) (float64, []string) {
	var caveats []string
	if len(q.Where) > 0 {
		caveats = append(caveats, "selection predicates: prediction assumes selectivity 1, so it understates the error of selective queries")
	}
	margs := make([]marginal, 0, len(q.GroupBy))
	combos := 1.0
	for _, col := range q.GroupBy {
		d, ok := ps.cols[col]
		if !ok {
			caveats = append(caveats, fmt.Sprintf("column %s has no sample metadata: prediction treats it as non-splitting and is optimistic", col))
			continue
		}
		if d.multiLevel && used[col] {
			caveats = append(caveats, fmt.Sprintf("column %s uses multi-level bands: subsampled medium groups are predicted as exact", col))
		}
		if d.outsideS {
			caveats = append(caveats, fmt.Sprintf("column %s has no small group table: its marginal is estimated from the overall sample alone, and values the sample missed are invisible to the prediction", col))
		}
		m := marginal{col: col}
		for _, b := range d.common {
			m.buckets = append(m.buckets, comboBucket{p: b.rows / ps.baseRows, vals: b.vals})
		}
		if d.rareVals > 0 {
			m.buckets = append(m.buckets, comboBucket{p: d.rareRows / d.rareVals / ps.baseRows, vals: d.rareVals, rare: true})
		}
		margs = append(margs, m)
		combos *= float64(len(m.buckets))
	}
	if len(margs) == 0 {
		// No splitting column: one global group, answered from the whole
		// sample — the model predicts (1−p)→0 error for it.
		return 0, caveats
	}
	if combos > maxErrorCombos {
		for i := range margs {
			margs[i].buckets = collapseTwoPoint(margs[i].buckets)
		}
	}

	var errSum, wSum float64
	var walk func(i int, p, vals float64, exact bool)
	walk = func(i int, p, vals float64, exact bool) {
		if i == len(margs) {
			w := vals * -math.Expm1(-ps.baseRows*p) // existence weight 1−e^{−N·p}
			if w <= 0 {
				return
			}
			e := 0.0
			if !exact {
				sp := sampleRows * p
				if sp <= 0 {
					e = 1
				} else {
					e = math.Min(1, z*math.Sqrt(math.Max(1-p, 1e-9)/sp))
				}
			}
			errSum += w * e
			wSum += w
			return
		}
		for _, b := range margs[i].buckets {
			walk(i+1, p*b.p, vals*b.vals, exact || (b.rare && used[margs[i].col]))
		}
	}
	walk(0, 1, 1, false)
	if wSum == 0 {
		return 0, caveats
	}
	return errSum / wSum, caveats
}

// collapseTwoPoint reduces a bucket list to at most one common and one rare
// bucket (the §4.4 two-point form), preserving total mass and value counts.
func collapseTwoPoint(buckets []comboBucket) []comboBucket {
	var out []comboBucket
	for _, want := range []bool{false, true} {
		var rows, vals float64
		for _, b := range buckets {
			if b.rare == want {
				rows += b.p * b.vals
				vals += b.vals
			}
		}
		if vals > 0 {
			out = append(out, comboBucket{p: rows / vals, vals: vals, rare: want})
		}
	}
	return out
}

// planChoice pairs a candidate with its executable plan.
type planChoice struct {
	cand PlanCandidate
	plan *RewritePlan
}

// defaultFractions are the overall-sample prefix fractions the planner
// explores. A prefix of the uniform reservoir sample is itself a uniform
// sample (reservoir slots are exchangeable), so trimming trades error for
// rows with no statistical bias.
var defaultFractions = []float64{1, 0.5, 0.25, 0.1}

// scanRate resolves the throughput estimate for latency predictions: the
// configured pin wins (tests and operators), then the calibrated moving
// average, then the conservative default.
func (p *smallGroupPrepared) scanRate() float64 {
	if r := p.cfg.ScanRowsPerSecond; r > 0 {
		return r
	}
	if p.pstats != nil {
		if r, ok := p.pstats.rate.estimate(); ok {
			return r
		}
	}
	return DefaultScanRowsPerSecond
}

// stats returns the lazily built planner statistics. A prepared state
// assembled without pstats (only possible through test struct literals)
// gets a throwaway build.
func (p *smallGroupPrepared) stats() *plannerStats {
	ps := p.pstats
	if ps == nil {
		ps = &plannerStats{}
	}
	ps.once.Do(func() { ps.build(p) })
	return ps
}

// relevantCapped is the table set Plan would use: the relevant tables under
// the MaxTablesPerQuery heuristic, in index order.
func (p *smallGroupPrepared) relevantCapped(q *engine.Query) []TableRef {
	relevant := p.meta.RelevantTables(q.GroupBy)
	if max := p.cfg.MaxTablesPerQuery; max > 0 && len(relevant) > max {
		sort.Slice(relevant, func(i, j int) bool { return relevant[i].RareRows > relevant[j].RareRows })
		relevant = relevant[:max]
		sort.Slice(relevant, func(i, j int) bool { return relevant[i].Index < relevant[j].Index })
	}
	return relevant
}

// enumerate builds the candidate plans for q: every prefix (by descending
// rare-row mass, §4.2.3's preference order) of the relevant small group
// tables × each overall-sample fraction, plus the exact fallback when the
// base data is attached. Candidates are predicted but not executed.
func (p *smallGroupPrepared) enumerate(q *engine.Query, z float64, withFractions, includeExact bool) ([]*planChoice, []string) {
	ps := p.stats()
	relevant := p.relevantCapped(q)
	// Inclusion priority: largest rare mass first.
	pri := append([]TableRef(nil), relevant...)
	sort.Slice(pri, func(i, j int) bool { return pri[i].RareRows > pri[j].RareRows })

	fractions := defaultFractions
	if !withFractions || !ps.uniform {
		fractions = []float64{1}
	}
	overallRows := ps.overallRows

	var caveats []string
	var choices []*planChoice
	for k := 0; k <= len(pri); k++ {
		subset := append([]TableRef(nil), pri[:k]...)
		sort.Slice(subset, func(i, j int) bool { return subset[i].Index < subset[j].Index })
		used := make(map[string]bool, k)
		var tableNames []string
		var tableRows int64
		for _, ref := range subset {
			for _, col := range ref.Columns {
				if len(ref.Columns) == 1 {
					used[col] = true
				}
			}
			tableNames = append(tableNames, p.tables[ref.Index].name)
			tableRows += p.tables[ref.Index].rows()
		}
		seen := map[int64]bool{}
		for _, f := range fractions {
			m := int64(math.Ceil(f * float64(overallRows)))
			if m < 1 {
				m = 1
			}
			if m >= overallRows {
				m, f = overallRows, 1
			}
			if seen[m] {
				continue
			}
			seen[m] = true

			plan := &RewritePlan{Query: q, Workers: p.cfg.Workers}
			usedMask := bitmask.New(p.meta.Width())
			for _, ref := range subset {
				plan.Steps = append(plan.Steps, RewriteStep{
					Source:  p.tables[ref.Index].src,
					Name:    p.tables[ref.Index].name,
					Exclude: usedMask.Clone(),
					Scale:   1,
				})
				usedMask.Set(ref.Index)
			}
			scale := p.overallScale
			var maxRows int
			if f < 1 {
				maxRows = int(m)
				scale = p.overallScale * float64(overallRows) / float64(m)
			}
			plan.Steps = append(plan.Steps, RewriteStep{
				Source:  p.overall.src,
				Name:    p.overall.name,
				Exclude: usedMask,
				Scale:   scale,
				MaxRows: maxRows,
			})

			predErr, cavs := ps.predictError(q, used, float64(m), z)
			if k == len(pri) && f == 1 {
				caveats = cavs // report the full plan's caveats once
			}
			rows := tableRows + m
			name := strings.Join(append(append([]string(nil), tableNames...), p.overall.name), "+")
			if f < 1 {
				name += fmt.Sprintf("/%g", f)
			}
			choices = append(choices, &planChoice{
				cand: PlanCandidate{
					Name:            name,
					Tables:          tableNames,
					OverallFraction: f,
					Rows:            rows,
					PredictedError:  predErr,
				},
				plan: plan,
			})
		}
	}
	if includeExact && p.db != nil {
		choices = append(choices, &planChoice{
			cand: PlanCandidate{Name: "exact", Rows: int64(p.db.NumRows()), Exact: true},
			plan: &RewritePlan{Query: q, Workers: p.cfg.Workers, Steps: []RewriteStep{{
				Source: p.db, Name: p.db.Name, Scale: 1, MarkExact: true,
			}}},
		})
	}
	rate := p.scanRate()
	for _, c := range choices {
		c.cand.PredictedLatency = time.Duration(float64(c.cand.Rows) / rate * float64(time.Second))
		c.cand.PredictedLatencyMicros = c.cand.PredictedLatency.Microseconds()
	}
	return choices, caveats
}

// selectBounded picks the plan for explicit bounds: the cheapest (minimum
// predicted latency) candidate predicted to satisfy every given bound; with
// only a time bound, the most accurate candidate within it. softBudget — the
// request deadline's remaining time, when one applies — prefers candidates
// that also fit the deadline but never causes a 422 by itself. Returns an
// *UnsatisfiableBoundsError when no candidate satisfies the bounds.
func selectBounded(choices []*planChoice, b Bounds, softBudget time.Duration) (*planChoice, error) {
	var feasible []*planChoice
	for _, c := range choices {
		ok := (b.ErrorBound == 0 || c.cand.PredictedError <= b.ErrorBound) &&
			(b.TimeBound == 0 || c.cand.PredictedLatency <= b.TimeBound)
		c.cand.Feasible = ok
		if ok {
			feasible = append(feasible, c)
		}
	}
	if len(feasible) == 0 {
		unsat := &UnsatisfiableBoundsError{Bounds: b, BestError: math.Inf(1), BestLatency: time.Duration(math.MaxInt64)}
		for _, c := range choices {
			if (b.TimeBound == 0 || c.cand.PredictedLatency <= b.TimeBound) && c.cand.PredictedError < unsat.BestError {
				unsat.BestError = c.cand.PredictedError
			}
			if (b.ErrorBound == 0 || c.cand.PredictedError <= b.ErrorBound) && c.cand.PredictedLatency < unsat.BestLatency {
				unsat.BestLatency = c.cand.PredictedLatency
			}
		}
		if math.IsInf(unsat.BestError, 1) { // nothing fits the time bound at all
			for _, c := range choices {
				unsat.BestError = math.Min(unsat.BestError, c.cand.PredictedError)
			}
		}
		if unsat.BestLatency == time.Duration(math.MaxInt64) {
			for _, c := range choices {
				if c.cand.PredictedLatency < unsat.BestLatency {
					unsat.BestLatency = c.cand.PredictedLatency
				}
			}
		}
		return nil, unsat
	}
	pool := feasible
	if softBudget > 0 {
		var fitting []*planChoice
		for _, c := range pool {
			if c.cand.PredictedLatency <= softBudget {
				fitting = append(fitting, c)
			}
		}
		if len(fitting) > 0 {
			pool = fitting
		}
	}
	best := pool[0]
	for _, c := range pool[1:] {
		if b.ErrorBound > 0 {
			// Cheapest plan meeting the bounds; accuracy breaks ties.
			if c.cand.PredictedLatency < best.cand.PredictedLatency ||
				(c.cand.PredictedLatency == best.cand.PredictedLatency && c.cand.PredictedError < best.cand.PredictedError) {
				best = c
			}
		} else {
			// Time bound only: most accurate plan within it; cost breaks ties.
			if c.cand.PredictedError < best.cand.PredictedError ||
				(c.cand.PredictedError == best.cand.PredictedError && c.cand.PredictedLatency < best.cand.PredictedLatency) {
				best = c
			}
		}
	}
	return best, nil
}

// selectForDeadline picks the plan for the implicit-deadline path (a request
// deadline with no explicit bounds): the most accurate candidate whose
// predicted latency fits the remaining budget, falling back to the cheapest
// candidate when nothing fits — degradation always produces an answer. The
// second return reports whether the choice degraded below the full plan.
func selectForDeadline(choices []*planChoice, budget time.Duration) (*planChoice, bool) {
	full := choices[0]
	for _, c := range choices[1:] {
		if len(c.cand.Tables) > len(full.cand.Tables) ||
			(len(c.cand.Tables) == len(full.cand.Tables) && c.cand.Rows > full.cand.Rows) {
			full = c
		}
	}
	var best *planChoice
	for _, c := range choices {
		if c.cand.PredictedLatency > budget {
			continue
		}
		if best == nil ||
			c.cand.PredictedError < best.cand.PredictedError ||
			(c.cand.PredictedError == best.cand.PredictedError && len(c.cand.Tables) > len(best.cand.Tables)) ||
			(c.cand.PredictedError == best.cand.PredictedError && len(c.cand.Tables) == len(best.cand.Tables) && c.cand.Rows < best.cand.Rows) {
			best = c
		}
	}
	if best == nil {
		// Nothing fits: cheapest candidate, flagged degraded.
		best = choices[0]
		for _, c := range choices[1:] {
			if c.cand.Rows < best.cand.Rows {
				best = c
			}
		}
		return best, true
	}
	return best, best != full
}

// achievedError estimates the answer's realized mean per-group relative
// error from its confidence intervals: half-width over |estimate|, capped at
// 1, worst aggregate per group, 0 for exact groups. This is the cheap online
// error estimate reported back as "achieved" — see docs/ACCURACY.md.
func achievedError(res *engine.Result, ivs map[engine.GroupKey][]stats.Interval) float64 {
	if res.NumGroups() == 0 {
		return 0
	}
	var sum float64
	for _, k := range res.Keys() {
		g := res.Group(k)
		if g.Exact {
			continue
		}
		var worst float64
		for i, iv := range ivs[k] {
			half := iv.Width() / 2
			if half == 0 {
				continue
			}
			rel := 1.0
			if est := math.Abs(g.Vals[i]); est > 0 {
				rel = math.Min(1, half/est)
			}
			worst = math.Max(worst, rel)
		}
		sum += worst
	}
	return sum / float64(res.NumGroups())
}
