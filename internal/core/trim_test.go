package core

import (
	"testing"

	"dynsample/internal/engine"
)

func q(cols ...string) *engine.Query {
	return &engine.Query{GroupBy: cols, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
}

func TestTrimColumns(t *testing.T) {
	workload := []*engine.Query{
		q("a", "b"), q("a"), q("a", "c"), q("b"), q("d"),
	}
	got := TrimColumns(workload, 2)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("TrimColumns = %v, want [a b]", got)
	}
	all := TrimColumns(workload, 1)
	if len(all) != 4 {
		t.Errorf("minCount=1 kept %v", all)
	}
	if all[0] != "a" {
		t.Errorf("most-referenced column not first: %v", all)
	}
	if got := TrimColumns(nil, 0); got != nil {
		t.Errorf("empty workload gave %v", got)
	}
}

func TestTrimColumnsFeedsPreprocess(t *testing.T) {
	db := skewedDB(t, 5000)
	workload := []*engine.Query{q("a"), q("a", "b"), q("a")}
	cols := TrimColumns(workload, 2) // keeps only "a"
	p := prep(t, db, SmallGroupConfig{BaseRate: 0.05, DistinctLimit: 100, Seed: 11, Columns: cols})
	if _, ok := p.Meta().Index("a"); !ok {
		t.Error("trimmed set lost column a")
	}
	if _, ok := p.Meta().Index("b"); ok {
		t.Error("column b survived trimming")
	}
}
