package core

import "dynsample/internal/obs"

// Runtime-phase instrumentation: what dynamic sample selection chose and
// what it cost, aggregated across queries. Per-query detail rides the
// obs.Trace on the request context instead (see AnswerCtx).
var (
	obsAnswers = obs.Default().CounterVec("aqp_core_answers_total",
		"Approximate answers produced, by strategy.", "strategy")
	obsPlanSteps = obs.Default().Histogram("aqp_core_plan_steps",
		"Rewrite steps (sample tables) per selected plan.",
		[]float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32})
	obsDegraded = obs.Default().Counter("aqp_core_degraded_total",
		"Plans degraded to the overall sample under deadline pressure.")
	obsSampleRows = obs.Default().Counter("aqp_core_sample_rows_scanned_total",
		"Sample-table rows scanned by approximate answers.")
)

// Planner instrumentation: how the bounded-query optimizer behaves in
// aggregate — candidates enumerated, how far predictions land from realized
// error, and how often bounds are missed or rejected outright.
var (
	obsPlannerCandidates = obs.Default().Histogram("aqp_core_planner_candidates",
		"Candidate plans considered per bounded query.",
		[]float64{1, 2, 4, 6, 8, 12, 16, 24, 32, 48})
	obsPlannerGap = obs.Default().Histogram("aqp_core_planner_prediction_gap",
		"Absolute gap between predicted and achieved relative error per bounded query.",
		[]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1})
	obsPlannerBoundMiss = obs.Default().Counter("aqp_core_planner_bound_miss_total",
		"Bounded queries whose achieved error estimate exceeded the requested error bound.")
	obsPlannerUnsat = obs.Default().Counter("aqp_core_planner_unsatisfiable_total",
		"Bounded queries rejected because no candidate plan satisfied the bounds.")
)
