package core

import "dynsample/internal/obs"

// Runtime-phase instrumentation: what dynamic sample selection chose and
// what it cost, aggregated across queries. Per-query detail rides the
// obs.Trace on the request context instead (see AnswerCtx).
var (
	obsAnswers = obs.Default().CounterVec("aqp_core_answers_total",
		"Approximate answers produced, by strategy.", "strategy")
	obsPlanSteps = obs.Default().Histogram("aqp_core_plan_steps",
		"Rewrite steps (sample tables) per selected plan.",
		[]float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32})
	obsDegraded = obs.Default().Counter("aqp_core_degraded_total",
		"Plans degraded to the overall sample under deadline pressure.")
	obsSampleRows = obs.Default().Counter("aqp_core_sample_rows_scanned_total",
		"Sample-table rows scanned by approximate answers.")
)
