package core

import (
	"bytes"
	"math"
	"testing"

	"dynsample/internal/datagen"
	"dynsample/internal/engine"
)

func TestRenormalizedMatchesFlatAnswers(t *testing.T) {
	db, err := datagen.TPCH(datagen.TPCHConfig{ScaleFactor: 0.3, Zipf: 2.0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := SmallGroupConfig{BaseRate: 0.02, Seed: 6}
	flat := prep(t, db, cfg)
	cfg.Renormalize = true
	ren := prep(t, db, cfg)

	queries := []*engine.Query{
		{GroupBy: []string{"p_brand"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}},
		{GroupBy: []string{"s_region", "l_returnflag"},
			Aggs:  []engine.Aggregate{{Kind: engine.Sum, Col: "l_extendedprice"}},
			Where: []engine.Predicate{engine.NewIn("c_region", engine.StringVal("c_region_000"))}},
		{GroupBy: []string{"o_orderpriority"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}},
	}
	for qi, q := range queries {
		af, err := flat.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		ar, err := ren.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		// Same seed -> identical sample row sets -> identical answers.
		if af.Result.NumGroups() != ar.Result.NumGroups() {
			t.Fatalf("query %d: %d vs %d groups", qi, af.Result.NumGroups(), ar.Result.NumGroups())
		}
		for _, k := range af.Result.Keys() {
			gf, gr := af.Result.Group(k), ar.Result.Group(k)
			if gr == nil {
				t.Fatalf("query %d: group %v missing under renormalized storage", qi, gf.Key)
			}
			if gf.Exact != gr.Exact {
				t.Errorf("query %d group %v: exactness differs", qi, gf.Key)
			}
			for i := range gf.Vals {
				if math.Abs(gf.Vals[i]-gr.Vals[i]) > 1e-9*(1+math.Abs(gf.Vals[i])) {
					t.Errorf("query %d group %v agg %d: flat %g renorm %g", qi, gf.Key, i, gf.Vals[i], gr.Vals[i])
				}
			}
		}
	}
}

func TestRenormalizedSavesSpaceOnWideSchema(t *testing.T) {
	db, err := datagen.Sales(datagen.SalesConfig{FactRows: 20000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := SmallGroupConfig{BaseRate: 0.01, Seed: 8}
	flat := prep(t, db, cfg)
	cfg.Renormalize = true
	ren := prep(t, db, cfg)
	if flat.SampleRows() != ren.SampleRows() {
		t.Fatalf("sample rows differ: %d vs %d", flat.SampleRows(), ren.SampleRows())
	}
	fb, rb := flat.SampleBytes(), ren.SampleBytes()
	if rb >= fb {
		t.Errorf("renormalized storage (%d bytes) not smaller than flat (%d bytes)", rb, fb)
	}
	t.Logf("flat %d bytes, renormalized %d bytes (%.1fx smaller)", fb, rb, float64(fb)/float64(rb))
}

func TestRenormalizedSaveRejected(t *testing.T) {
	db := skewedDB(t, 2000)
	p := prep(t, db, SmallGroupConfig{BaseRate: 0.05, DistinctLimit: 100, Seed: 9, Renormalize: true})
	var buf bytes.Buffer
	if err := SaveSmallGroup(&buf, p); err == nil {
		t.Error("saving renormalized storage should be rejected")
	}
}

func TestRenormalizerSharedDims(t *testing.T) {
	db, err := datagen.TPCH(datagen.TPCHConfig{ScaleFactor: 0.05, Zipf: 1.5, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	rowsA := []int{0, 10, 20, 30}
	rowsB := []int{5, 10, 4999}
	r := engine.NewRenormalizer(db, rowsA, rowsB)
	a, err := r.Build("a", rowsA, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Build("b", rowsB, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both samples share the same reduced dimension table objects.
	for d := range a.Dims {
		if a.Dims[d].Table != b.Dims[d].Table {
			t.Errorf("dimension %d not shared", d)
		}
		if a.Dims[d].Table.NumRows() >= db.Dims[d].Table.NumRows() && db.Dims[d].Table.NumRows() > 7 {
			t.Errorf("dimension %d not reduced: %d rows", d, a.Dims[d].Table.NumRows())
		}
	}
	// The renormalized view values must match the base view row for row.
	for _, col := range []string{"p_brand", "s_region", "l_quantity"} {
		base, _ := db.Accessor(col)
		red, err := a.Accessor(col)
		if err != nil {
			t.Fatal(err)
		}
		for i, row := range rowsA {
			if red.Value(i) != base.Value(row) {
				t.Errorf("column %s row %d: %v vs base %v", col, i, red.Value(i), base.Value(row))
			}
		}
	}
	// Rows not covered by the renormalizer are rejected.
	if _, err := r.Build("c", []int{1}, nil, nil); err == nil {
		t.Error("uncovered row set accepted")
	}
}
