package core

import (
	"math"
	"testing"
	"testing/quick"

	"dynsample/internal/engine"
	"dynsample/internal/randx"
)

// randomDB builds a small random single-table database whose shape (column
// cardinalities, skews, row count) is derived from the seed.
func randomDB(seed int64) *engine.Database {
	rng := randx.New(seed)
	n := 2000 + rng.Intn(3000)
	nCols := 2 + rng.Intn(3)
	cols := make([]*engine.Column, nCols)
	zipfs := make([]*randx.Zipf, nCols)
	for j := 0; j < nCols; j++ {
		cols[j] = engine.NewColumn(string(rune('a'+j)), engine.String)
		card := 5 + rng.Intn(100)
		zipfs[j] = randx.NewZipf(0.5+rng.Float64()*2, card)
	}
	m := engine.NewColumn("m", engine.Int)
	fact := engine.NewTable("fact", append(cols, m)...)
	for i := 0; i < n; i++ {
		for j := 0; j < nCols; j++ {
			cols[j].AppendString("v" + string(rune('0'+j)) + "_" + itoa(zipfs[j].Draw(rng)))
		}
		m.AppendInt(int64(rng.Intn(100)))
		fact.EndRow()
	}
	return engine.MustNewDatabase("rand", fact)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// Property: for any random database, rate and seed, every group whose value
// is outside L(C) is present in the approximate answer, marked exact, and
// numerically identical to the ground truth — for COUNT and SUM alike.
func TestPropertyRareGroupsExact(t *testing.T) {
	f := func(seed int64) bool {
		db := randomDB(seed)
		rng := randx.New(seed + 1)
		rate := 0.01 + rng.Float64()*0.1
		p, err := NewSmallGroup(SmallGroupConfig{BaseRate: rate, Seed: seed + 2}).Preprocess(db)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		sgp := p.(*smallGroupPrepared)
		q := &engine.Query{
			GroupBy: []string{"a"},
			Aggs:    []engine.Aggregate{{Kind: engine.Count}, {Kind: engine.Sum, Col: "m"}},
		}
		exact, err := engine.ExecuteExact(db, q)
		if err != nil {
			return false
		}
		ans, err := sgp.Answer(q)
		if err != nil {
			return false
		}
		for _, k := range exact.Keys() {
			eg := exact.Group(k)
			if sgp.Meta().IsCommon("a", eg.Key[0]) {
				continue
			}
			ag := ans.Result.Group(k)
			if ag == nil || !ag.Exact {
				t.Logf("seed %d: rare group %v missing or inexact", seed, eg.Key)
				return false
			}
			for i := range eg.Vals {
				if math.Abs(eg.Vals[i]-ag.Vals[i]) > 1e-9 {
					t.Logf("seed %d: rare group %v agg %d %g != %g", seed, eg.Key, i, ag.Vals[i], eg.Vals[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: at sampling rate 1 the combined rewritten query reproduces the
// exact answer for any grouping of columns — the bitmask chaining never
// double-counts and never drops a row, regardless of how the small group
// tables overlap.
func TestPropertyRateOnePartition(t *testing.T) {
	f := func(seed int64) bool {
		db := randomDB(seed)
		rng := randx.New(seed + 3)
		p, err := NewSmallGroup(SmallGroupConfig{
			BaseRate:           1,
			SmallGroupFraction: 0.05 + rng.Float64()*0.2, // big, heavily overlapping tables
			Seed:               seed + 4,
		}).Preprocess(db)
		if err != nil {
			return false
		}
		groupBy := []string{"a", "b"}
		if rng.Intn(2) == 0 {
			groupBy = []string{"b"}
		}
		q := &engine.Query{GroupBy: groupBy, Aggs: []engine.Aggregate{{Kind: engine.Count}, {Kind: engine.Sum, Col: "m"}}}
		exact, err := engine.ExecuteExact(db, q)
		if err != nil {
			return false
		}
		ans, err := p.Answer(q)
		if err != nil {
			return false
		}
		if exact.NumGroups() != ans.Result.NumGroups() {
			t.Logf("seed %d: group counts %d vs %d", seed, exact.NumGroups(), ans.Result.NumGroups())
			return false
		}
		for _, k := range exact.Keys() {
			eg, ag := exact.Group(k), ans.Result.Group(k)
			for i := range eg.Vals {
				if math.Abs(eg.Vals[i]-ag.Vals[i]) > 1e-6*(1+math.Abs(eg.Vals[i])) {
					t.Logf("seed %d: group %v agg %d %g != %g", seed, eg.Key, i, ag.Vals[i], eg.Vals[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: small group table sizes never exceed N·t (the paper's size bound
// for the default two-level hierarchy) and the metadata's RareRows matches
// the materialised tables.
func TestPropertyTableSizeBound(t *testing.T) {
	f := func(seed int64) bool {
		db := randomDB(seed)
		rng := randx.New(seed + 5)
		frac := 0.005 + rng.Float64()*0.1
		p, err := NewSmallGroup(SmallGroupConfig{
			BaseRate:           0.02,
			SmallGroupFraction: frac,
			Seed:               seed + 6,
		}).Preprocess(db)
		if err != nil {
			return false
		}
		sgp := p.(*smallGroupPrepared)
		bound := int64(frac * float64(db.NumRows()))
		for i, tbl := range sgp.Tables() {
			if int64(tbl.NumRows()) > bound {
				t.Logf("seed %d: table %d has %d rows > bound %d", seed, i, tbl.NumRows(), bound)
				return false
			}
			if int64(tbl.NumRows()) != sgp.Meta().Columns()[i].RareRows {
				t.Logf("seed %d: table %d rows %d != meta %d", seed, i, tbl.NumRows(), sgp.Meta().Columns()[i].RareRows)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: smallness is monotonic (footnote 1): a group that is exact for
// grouping columns G stays exact when more grouping columns or predicates
// are added.
func TestPropertySmallnessMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		db := randomDB(seed)
		p, err := NewSmallGroup(SmallGroupConfig{BaseRate: 0.05, Seed: seed + 7}).Preprocess(db)
		if err != nil {
			return false
		}
		sgp := p.(*smallGroupPrepared)
		base := &engine.Query{GroupBy: []string{"a"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
		wide := &engine.Query{GroupBy: []string{"a", "b"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
		ansBase, err := sgp.Answer(base)
		if err != nil {
			return false
		}
		ansWide, err := sgp.Answer(wide)
		if err != nil {
			return false
		}
		exactA := make(map[engine.Value]bool)
		for _, g := range ansBase.Result.Groups() {
			if g.Exact {
				exactA[g.Key[0]] = true
			}
		}
		for _, g := range ansWide.Result.Groups() {
			if exactA[g.Key[0]] && !g.Exact {
				t.Logf("seed %d: group %v lost exactness when widening", seed, g.Key)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: confidence intervals always contain the point estimate, exact
// groups get zero-width intervals, and COUNT intervals never go negative.
func TestPropertyIntervalSanity(t *testing.T) {
	f := func(seed int64) bool {
		db := randomDB(seed)
		p, err := NewSmallGroup(SmallGroupConfig{BaseRate: 0.03, Seed: seed + 8}).Preprocess(db)
		if err != nil {
			return false
		}
		q := &engine.Query{GroupBy: []string{"a"}, Aggs: []engine.Aggregate{{Kind: engine.Count}, {Kind: engine.Sum, Col: "m"}}}
		ans, err := p.Answer(q)
		if err != nil {
			return false
		}
		for _, k := range ans.Result.Keys() {
			g := ans.Result.Group(k)
			for i := range g.Vals {
				iv := ans.Interval(k, i)
				if !iv.Contains(g.Vals[i]) {
					t.Logf("seed %d: CI %+v excludes estimate %g", seed, iv, g.Vals[i])
					return false
				}
				if g.Exact && iv.Width() != 0 {
					t.Logf("seed %d: exact group with CI width %g", seed, iv.Width())
					return false
				}
				if i == 0 && iv.Lo < 0 {
					t.Logf("seed %d: negative COUNT bound %g", seed, iv.Lo)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
