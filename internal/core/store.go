package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"dynsample/internal/engine"
)

// Persistence for pre-processed small group sampling state. The paper's
// pre-processing phase stores sample tables and the metadata table "in the
// database" (§3.1) so the runtime phase can use them across sessions;
// SaveSmallGroup and LoadSmallGroup provide the same durability for this
// implementation. A loaded Prepared answers queries without access to the
// base data.

const storeMagic = "DSSG"

// storeVersion 2 adds the ingest data generation (a u64 after the runtime
// configuration block); version-1 stores load with generation 0.
const storeVersion = 2

// Sanity caps on length prefixes. A truncated or corrupted header must
// produce a descriptive error, not a multi-gigabyte allocation: every count
// read from the stream is bounded before it sizes anything, and map/slice
// capacity hints are additionally clamped to allocHint so even an in-range
// lie costs little before the stream runs dry.
const (
	maxStoreColumns = 1 << 16 // columns in the metadata table
	maxStorePairs   = 1 << 20 // column-pair metadata entries
	maxStoreSetSize = 1 << 26 // values per common/exact/rare set
	maxStoreTables  = 1 << 20 // MaxTablesPerQuery upper bound
	allocHint       = 1 << 16 // pre-allocation clamp for header-declared sizes
)

func capHint(n uint32) int {
	if n > allocHint {
		return allocHint
	}
	return int(n)
}

// SaveSmallGroup serialises a small group sampling Prepared (as returned by
// SmallGroup.Preprocess or a previous LoadSmallGroup).
func SaveSmallGroup(w io.Writer, p Prepared) error {
	sgp, ok := p.(*smallGroupPrepared)
	if !ok {
		return fmt.Errorf("core: %T is not small group sampling state", p)
	}
	bw := bufio.NewWriter(w)
	bw.WriteString(storeMagic)
	putU32(bw, storeVersion)

	// Runtime configuration.
	putF64(bw, sgp.cfg.ConfidenceLevel)
	putU32(bw, uint32(sgp.cfg.MaxTablesPerQuery))
	putF64(bw, sgp.overallScale)
	putU64(bw, sgp.dataGen)

	// Metadata.
	m := sgp.meta
	putU64(bw, uint64(m.BaseRows))
	putU32(bw, uint32(len(m.columns)))
	for _, cm := range m.columns {
		putString(bw, cm.Column)
		putU32(bw, uint32(cm.Distinct))
		putU64(bw, uint64(cm.RareRows))
		putValueSet(bw, cm.Common)
		if cm.Exact == nil {
			bw.WriteByte(0)
		} else {
			bw.WriteByte(1)
			putValueSet(bw, cm.Exact)
		}
	}
	putU32(bw, uint32(len(m.pairs)))
	for _, pm := range m.pairs {
		putString(bw, pm.Cols[0])
		putString(bw, pm.Cols[1])
		putU64(bw, uint64(pm.RareRows))
		putU32(bw, uint32(len(pm.Rare)))
		for k := range pm.Rare {
			putString(bw, string(k))
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	// Tables (small group tables in index order, then the overall sample).
	// Only flat join-synopsis storage is serialisable; renormalized sample
	// sets must be rebuilt from the base data.
	for _, t := range sgp.tables {
		tbl, ok := t.src.(*engine.Table)
		if !ok {
			return fmt.Errorf("core: cannot save renormalized sample storage")
		}
		if err := engine.WriteBinary(tbl, w); err != nil {
			return err
		}
	}
	otbl, ok := sgp.overall.src.(*engine.Table)
	if !ok {
		return fmt.Errorf("core: cannot save renormalized sample storage")
	}
	return engine.WriteBinary(otbl, w)
}

// LoadSmallGroup reads state written by SaveSmallGroup.
func LoadSmallGroup(r io.Reader) (Prepared, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading store header: %w", err)
	}
	if string(magic) != storeMagic {
		return nil, fmt.Errorf("core: bad store magic %q", magic)
	}
	version, err := getU32(br)
	if err != nil {
		return nil, err
	}
	if version != 1 && version != storeVersion {
		return nil, fmt.Errorf("core: unsupported store version %d", version)
	}

	var cfg SmallGroupConfig
	if cfg.ConfidenceLevel, err = getF64(br); err != nil {
		return nil, err
	}
	maxTables, err := getU32(br)
	if err != nil {
		return nil, err
	}
	if maxTables > maxStoreTables {
		return nil, fmt.Errorf("core: unreasonable max tables per query %d", maxTables)
	}
	cfg.MaxTablesPerQuery = int(maxTables)
	overallScale, err := getF64(br)
	if err != nil {
		return nil, err
	}
	var dataGen uint64
	if version >= 2 {
		if dataGen, err = getU64(br); err != nil {
			return nil, err
		}
	}

	baseRows, err := getU64(br)
	if err != nil {
		return nil, err
	}
	ncols, err := getU32(br)
	if err != nil {
		return nil, err
	}
	if ncols > maxStoreColumns {
		return nil, fmt.Errorf("core: unreasonable column count %d", ncols)
	}
	metas := make([]ColumnMeta, ncols)
	for i := range metas {
		cm := &metas[i]
		if cm.Column, err = getString(br); err != nil {
			return nil, err
		}
		d, err := getU32(br)
		if err != nil {
			return nil, err
		}
		cm.Distinct = int(d)
		rr, err := getU64(br)
		if err != nil {
			return nil, err
		}
		cm.RareRows = int64(rr)
		if cm.Common, err = getValueSet(br); err != nil {
			return nil, err
		}
		hasExact, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if hasExact == 1 {
			if cm.Exact, err = getValueSet(br); err != nil {
				return nil, err
			}
		}
	}
	meta := NewMetadata(int64(baseRows), metas)

	npairs, err := getU32(br)
	if err != nil {
		return nil, err
	}
	if npairs > maxStorePairs {
		return nil, fmt.Errorf("core: unreasonable pair count %d", npairs)
	}
	for i := uint32(0); i < npairs; i++ {
		var pm PairMeta
		if pm.Cols[0], err = getString(br); err != nil {
			return nil, err
		}
		if pm.Cols[1], err = getString(br); err != nil {
			return nil, err
		}
		rr, err := getU64(br)
		if err != nil {
			return nil, err
		}
		pm.RareRows = int64(rr)
		nk, err := getU32(br)
		if err != nil {
			return nil, err
		}
		if nk > maxStoreSetSize {
			return nil, fmt.Errorf("core: unreasonable rare key count %d", nk)
		}
		pm.Rare = make(map[engine.GroupKey]struct{}, capHint(nk))
		for j := uint32(0); j < nk; j++ {
			k, err := getString(br)
			if err != nil {
				return nil, err
			}
			pm.Rare[engine.GroupKey(k)] = struct{}{}
		}
		meta.AddPair(pm)
	}

	p := &smallGroupPrepared{meta: meta, cfg: cfg, overallScale: overallScale, dataGen: dataGen, pstats: &plannerStats{}}
	for i := 0; i < meta.Width(); i++ {
		t, err := engine.ReadBinary(br)
		if err != nil {
			return nil, fmt.Errorf("core: reading sample table %d: %w", i, err)
		}
		p.tables = append(p.tables, sampleSource{src: t, name: t.Name})
	}
	ot, err := engine.ReadBinary(br)
	if err != nil {
		return nil, fmt.Errorf("core: reading overall sample: %w", err)
	}
	p.overall = sampleSource{src: ot, name: ot.Name}
	return p, nil
}

func putU32(w *bufio.Writer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:])
}

func putU64(w *bufio.Writer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:])
}

func putF64(w *bufio.Writer, v float64) { putU64(w, math.Float64bits(v)) }

func putString(w *bufio.Writer, s string) {
	putU32(w, uint32(len(s)))
	w.WriteString(s)
}

func putValueSet(w *bufio.Writer, set map[engine.Value]struct{}) {
	putU32(w, uint32(len(set)))
	for v := range set {
		putString(w, string(engine.EncodeKey([]engine.Value{v})))
	}
}

func getU32(r *bufio.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func getU64(r *bufio.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func getF64(r *bufio.Reader) (float64, error) {
	v, err := getU64(r)
	return math.Float64frombits(v), err
}

func getString(r *bufio.Reader) (string, error) {
	n, err := getU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("core: unreasonable string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func getValueSet(r *bufio.Reader) (map[engine.Value]struct{}, error) {
	n, err := getU32(r)
	if err != nil {
		return nil, err
	}
	if n > maxStoreSetSize {
		return nil, fmt.Errorf("core: unreasonable value set size %d", n)
	}
	set := make(map[engine.Value]struct{}, capHint(n))
	for i := uint32(0); i < n; i++ {
		s, err := getString(r)
		if err != nil {
			return nil, err
		}
		vals, err := engine.DecodeKeyChecked(engine.GroupKey(s))
		if err != nil {
			return nil, fmt.Errorf("core: corrupt value entry: %w", err)
		}
		if len(vals) != 1 {
			return nil, fmt.Errorf("core: corrupt value entry")
		}
		set[vals[0]] = struct{}{}
	}
	return set, nil
}
