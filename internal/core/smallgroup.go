package core

import (
	"fmt"
	"sort"

	"dynsample/internal/bitmask"
	"dynsample/internal/engine"
	"dynsample/internal/parallel"
	"dynsample/internal/randx"
	"dynsample/internal/sample"
)

// DefaultDistinctLimit is τ, the distinct-value cutoff above which a column
// is dropped from S during the first pre-processing pass ("we set [it] to
// 5000 in our experiments", §4.2.1).
const DefaultDistinctLimit = 5000

// DefaultConfidenceLevel is the nominal coverage of reported intervals.
const DefaultConfidenceLevel = 0.95

// DefaultScanRowsPerSecond is the conservative scan-throughput estimate the
// deadline degradation rule uses when SmallGroupConfig.ScanRowsPerSecond is
// unset (including sample sets restored from disk, whose serialised form
// does not carry this machine-local figure). The in-memory kernel scans
// tens of millions of rows per second per core; erring low only makes
// degradation slightly more eager, never an answer slower.
const DefaultScanRowsPerSecond = 25e6

// OverallBuilder selects the rows of the overall sample. The default is a
// uniform reservoir sample, but §4.2.1 notes the overall sample is pluggable:
// "it is also possible to use a non-uniform sampling technique ... for
// example, we use outlier indexing to construct the overall sample". A
// non-uniform builder returns per-row weights (inverse sampling rates);
// weights may be nil for a uniform sample, in which case the runtime scales
// by N/len(rows).
type OverallBuilder interface {
	BuildOverall(db *engine.Database, target int, seed int64) (rows []int, weights []float64, err error)
}

// HierarchyLevel is one band of the multi-level group-size hierarchy
// extension (§4.2.3: "one could sample 100% of rows from small groups, 10%
// of rows from 'medium-sized' groups, and 1% of rows from large groups").
// A column value belongs to the first level whose MaxFraction bound covers
// its cumulative tail mass; its rows enter the column's small group table
// sampled at Rate (with weight 1/Rate).
type HierarchyLevel struct {
	// MaxFraction bounds the cumulative tail mass (as a fraction of the
	// database) covered by this and all rarer levels.
	MaxFraction float64
	// Rate is the sampling rate for rows in this band; the first level must
	// use rate 1 so the smallest groups stay exact.
	Rate float64
}

// BernoulliOverall draws the overall sample by independent per-row coin
// flips instead of the default fixed-size reservoir — the sampling model the
// paper's analysis assumes (§4.4: "we make the simplifying assumption that
// Bernoulli sampling is performed"). The realised sample size varies around
// the target; the runtime scales by the realised size, so estimates stay
// unbiased.
type BernoulliOverall struct{}

// BuildOverall implements OverallBuilder.
func (BernoulliOverall) BuildOverall(db *engine.Database, target int, seed int64) ([]int, []float64, error) {
	n := db.NumRows()
	rng := randx.New(seed)
	rows := sample.Bernoulli(rng, n, float64(target)/float64(n))
	if len(rows) == 0 {
		rows = []int{rng.Intn(n)}
	}
	// Nil weights: the runtime would scale by N/len(rows), but weights make
	// the realised inverse rate explicit per row.
	w := float64(n) / float64(len(rows))
	weights := make([]float64, len(rows))
	for i := range weights {
		weights[i] = w
	}
	return rows, weights, nil
}

// SmallGroupConfig parameterises small group sampling pre-processing.
type SmallGroupConfig struct {
	// BaseRate is r, the overall sample size as a fraction of the database.
	BaseRate float64
	// SmallGroupFraction is t, the maximum size of each small group table as
	// a fraction of the database. Zero means 0.5·BaseRate, the sampling
	// allocation ratio γ=0.5 recommended by the analysis of §4.4.
	SmallGroupFraction float64
	// DistinctLimit is τ; zero means DefaultDistinctLimit.
	DistinctLimit int
	// Columns restricts the candidate column set S (workload-based trimming,
	// §4.2.3). Nil means all view columns.
	Columns []string
	// ConfidenceLevel is the nominal CI coverage; zero means 0.95.
	ConfidenceLevel float64
	// MaxTablesPerQuery, when positive, caps how many small group tables a
	// single query may read (the runtime heuristic suggested in §4.2.3).
	// Tables covering the most rare rows are preferred.
	MaxTablesPerQuery int
	// Levels enables the multi-level hierarchy extension. Nil means the
	// paper's default two-level scheme: one band at fraction
	// SmallGroupFraction, rate 1.
	Levels []HierarchyLevel
	// Pairs lists column pairs to build pair small group tables for
	// (§4.2.3 variation). A pair table stores, completely, the rows whose
	// value combination is rare while each value is individually common.
	Pairs [][2]string
	// Overall overrides how the overall sample is drawn; nil means a uniform
	// reservoir sample.
	Overall OverallBuilder
	// Renormalize stores samples as renormalized join synopses (§5.2.2):
	// fact slices joined to reduced dimension tables shared across all
	// sample tables, instead of fully flattened tables. Saves space on wide
	// star schemas at a small runtime join cost.
	Renormalize bool
	// Workers is the worker budget for both phases. Pre-processing fans out
	// the per-column frequency counters of scan 1 and the materialisation of
	// the small group tables across Workers goroutines; at runtime the
	// rewritten query's steps execute as parallel tasks over partitioned
	// scans (RewritePlan.Workers). 0 preserves the fully serial paths.
	// Outputs are identical for every value: parallel pre-processing
	// partitions work whose results never depend on completion order, and
	// all randomness stays in the single-threaded second scan.
	Workers int
	// Seed drives all randomness in pre-processing.
	Seed int64
	// ScanRowsPerSecond estimates runtime scan throughput for the deadline
	// degradation rule (AnswerCtx): a plan whose total sample rows exceed
	// remaining-budget × ScanRowsPerSecond falls back to the overall sample.
	// Zero means DefaultScanRowsPerSecond. Tests set it very low (force
	// degradation) or very high (forbid it) to make the rule deterministic.
	ScanRowsPerSecond float64
}

func (c SmallGroupConfig) withDefaults() SmallGroupConfig {
	if c.SmallGroupFraction == 0 {
		c.SmallGroupFraction = 0.5 * c.BaseRate
	}
	if c.DistinctLimit == 0 {
		c.DistinctLimit = DefaultDistinctLimit
	}
	if c.ConfidenceLevel == 0 {
		c.ConfidenceLevel = DefaultConfidenceLevel
	}
	if c.Levels == nil {
		c.Levels = []HierarchyLevel{{MaxFraction: c.SmallGroupFraction, Rate: 1}}
	}
	return c
}

func (c SmallGroupConfig) validate() error {
	if c.BaseRate <= 0 || c.BaseRate > 1 {
		return fmt.Errorf("smallgroup: base rate %g out of (0,1]", c.BaseRate)
	}
	if c.SmallGroupFraction < 0 || c.SmallGroupFraction > 1 {
		return fmt.Errorf("smallgroup: small group fraction %g out of [0,1]", c.SmallGroupFraction)
	}
	for i, l := range c.Levels {
		if l.MaxFraction <= 0 || l.MaxFraction > 1 {
			return fmt.Errorf("smallgroup: level %d fraction %g out of (0,1]", i, l.MaxFraction)
		}
		if l.Rate <= 0 || l.Rate > 1 {
			return fmt.Errorf("smallgroup: level %d rate %g out of (0,1]", i, l.Rate)
		}
		if i == 0 && l.Rate != 1 {
			return fmt.Errorf("smallgroup: first level must have rate 1 (smallest groups stay exact)")
		}
		if i > 0 {
			if l.MaxFraction <= c.Levels[i-1].MaxFraction {
				return fmt.Errorf("smallgroup: level fractions must increase")
			}
			if l.Rate >= c.Levels[i-1].Rate {
				return fmt.Errorf("smallgroup: level rates must decrease")
			}
		}
	}
	return nil
}

// SmallGroup is the small group sampling strategy (§4).
type SmallGroup struct {
	cfg SmallGroupConfig
}

// NewSmallGroup returns the strategy with the given configuration.
func NewSmallGroup(cfg SmallGroupConfig) *SmallGroup { return &SmallGroup{cfg: cfg} }

// Name implements Strategy.
func (s *SmallGroup) Name() string { return "smallgroup" }

// Preprocess implements the two-scan pre-processing algorithm of §4.2.1.
//
// Scan 1 counts the occurrences of each distinct value in every candidate
// column (dropping columns whose distinct count exceeds τ) and derives each
// column's common-value set L(C) — generalised, under the multi-level
// extension, to a band assignment per value. Scan 2 assigns every row its
// membership bitmask, materialises the small group tables and draws the
// overall sample by reservoir sampling, all in one pass.
func (s *SmallGroup) Preprocess(db *engine.Database) (Prepared, error) {
	cfg := s.cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	candidates := cfg.Columns
	if candidates == nil {
		candidates = db.Columns()
	}
	n := db.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("smallgroup: database %q is empty", db.Name)
	}

	// ---- Scan 1: per-column value frequencies with the τ cutoff. ----
	// Dictionary-encoded columns count by code into a dense array; numeric
	// columns use a hashtable with the paper's τ cutoff ("once the number of
	// distinct values for a column exceeds a threshold τ ... we remove that
	// column from S and cease to maintain its counts").
	counters := make([]*colCounter, 0, len(candidates))
	for _, name := range candidates {
		acc, err := db.Accessor(name)
		if err != nil {
			return nil, fmt.Errorf("smallgroup: %w", err)
		}
		ct, err := db.ColumnType(name)
		if err != nil {
			return nil, fmt.Errorf("smallgroup: %w", err)
		}
		counters = append(counters, newColCounter(name, acc, ct, cfg.DistinctLimit))
	}
	// Counters are independent (one column each, accessors are read-only), so
	// scan 1 fans out one full-column pass per worker. Counts are identical to
	// the serial row-major loop for any worker count.
	parallel.ForEach(cfg.Workers, len(counters), func(i int) {
		c := counters[i]
		for row := 0; row < n; row++ {
			c.observe(row)
		}
	})

	// Derive the band assignment per surviving column; drop columns with no
	// small groups ("It may be that a column C has no small groups, in which
	// case it is removed from S").
	var metas []ColumnMeta
	var bands []bandTester
	for _, c := range counters {
		cm, tester, ok := c.finish(int64(n), cfg.Levels)
		if !ok {
			continue
		}
		metas = append(metas, cm)
		bands = append(bands, tester)
	}
	meta := NewMetadata(int64(n), metas)

	// Pair tables (§4.2.3 variation): tuple frequencies over rows where both
	// columns are individually common.
	pairTesters, err := buildPairs(db, meta, cfg, bands)
	if err != nil {
		return nil, err
	}
	width := meta.Width()

	// ---- Scan 2: bitmask assignment, small group tables, overall sample. ----
	rng := randx.New(cfg.Seed)
	// maskOf is called from concurrent table builders later; band and pair
	// testers only read their frequency structures, so it is safe as long as
	// no tester captures mutable scratch state.
	maskOf := func(row int) bitmask.Mask {
		m := bitmask.New(width)
		for i, band := range bands {
			if band(row) >= 0 {
				m.Set(i)
			}
		}
		for _, pt := range pairTesters {
			if pt.test(row) {
				m.Set(pt.index)
			}
		}
		return m
	}

	target := int(cfg.BaseRate * float64(n))
	if target < 1 {
		target = 1
	}
	res := sample.NewReservoir(target, rng)
	tableRows := make([][]int, width)
	tableWeights := make([][]float64, width)
	weighted := make([]bool, width)
	for row := 0; row < n; row++ {
		for i, band := range bands {
			b := band(row)
			if b < 0 {
				continue
			}
			rate := cfg.Levels[b].Rate
			if rate < 1 {
				// Medium band: subsample at the level's rate; the bitmask
				// still marks the row so the overall sample filters it out.
				if rng.Float64() >= rate {
					continue
				}
				weighted[i] = true
			}
			tableRows[i] = append(tableRows[i], row)
			tableWeights[i] = append(tableWeights[i], 1/rate)
		}
		for _, pt := range pairTesters {
			if pt.test(row) {
				tableRows[pt.index] = append(tableRows[pt.index], row)
				tableWeights[pt.index] = append(tableWeights[pt.index], 1)
			}
		}
		res.Offer(row)
	}

	p := &smallGroupPrepared{db: db, meta: meta, cfg: cfg, tables: make([]sampleSource, width), pstats: &plannerStats{}}

	names := make([]string, width)
	for _, cm := range meta.Columns() {
		names[cm.Index] = "sg_" + cm.Column
	}
	for _, pm := range meta.Pairs() {
		names[pm.Index] = "sg_" + pm.Cols[0] + "__" + pm.Cols[1]
	}

	// Overall sample rows and weights.
	var overallRows []int
	var overallWeights []float64
	if cfg.Overall != nil {
		var err error
		overallRows, overallWeights, err = cfg.Overall.BuildOverall(db, target, cfg.Seed+1)
		if err != nil {
			return nil, fmt.Errorf("smallgroup: overall builder: %w", err)
		}
		p.overallScale = 1
	} else {
		overallRows = append([]int(nil), res.Items()...)
		sort.Ints(overallRows)
		p.overallScale = float64(n) / float64(len(overallRows))
	}

	// Materialise: flat join synopses by default, renormalized (§5.2.2
	// space optimisation) on request.
	var renorm *engine.Renormalizer
	if cfg.Renormalize {
		all := append(append([][]int{}, tableRows...), overallRows)
		renorm = engine.NewRenormalizer(db, all...)
		p.sharedDims = renorm.ReducedDims()
	}
	materialize := func(name string, rows []int, masks []bitmask.Mask, w []float64) (sampleSource, error) {
		if renorm != nil {
			src, err := renorm.Build(name, rows, masks, w)
			if err != nil {
				return sampleSource{}, err
			}
			return sampleSource{src: src, name: name}, nil
		}
		return sampleSource{src: db.Flatten(name, rows, masks, w), name: name}, nil
	}

	// Fan the per-table builds (bitmask computation + materialisation) out
	// across workers: task i builds small group table i, the last task builds
	// the overall sample. Every input (row lists, band testers, the base
	// data, the renormalizer's remap) is read-only by now, and each task
	// writes only its own slot, so the built tables are identical for any
	// worker count.
	buildOne := func(i int) error {
		rows, name := overallRows, "sg_overall"
		var w []float64 = overallWeights
		if i < width {
			rows, name = tableRows[i], names[i]
			w = nil
			if weighted[i] {
				w = tableWeights[i]
			}
		}
		masks := make([]bitmask.Mask, len(rows))
		for j, r := range rows {
			masks[j] = maskOf(r)
		}
		src, err := materialize(name, rows, masks, w)
		if err != nil {
			return err
		}
		if i < width {
			p.tables[i] = src
		} else {
			p.overall = src
		}
		return nil
	}
	if err := parallel.ForEachErr(cfg.Workers, width+1, buildOne); err != nil {
		return nil, err
	}
	return p, nil
}

// pairTester tests pair-table membership for one configured column pair.
type pairTester struct {
	index int
	test  func(row int) bool
}

// buildPairs derives the pair small group tables' metadata and testers. A
// row belongs to the pair table when both its values are individually common
// and the (v1,v2) combination's total frequency lies in the rare tail of
// mass at most t·N.
func buildPairs(db *engine.Database, meta *Metadata, cfg SmallGroupConfig, bands []bandTester) ([]pairTester, error) {
	if len(cfg.Pairs) == 0 {
		return nil, nil
	}
	n := db.NumRows()
	bandOf := make(map[string]bandTester, len(meta.Columns()))
	for i, cm := range meta.Columns() {
		bandOf[cm.Column] = bands[i]
	}
	commonRow := func(col string) (func(row int) bool, error) {
		if t, ok := bandOf[col]; ok {
			return func(row int) bool { return t(row) < 0 }, nil
		}
		// Column not in S: every value is common.
		if !db.HasColumn(col) {
			return nil, fmt.Errorf("smallgroup: unknown pair column %q", col)
		}
		return func(int) bool { return true }, nil
	}

	var testers []pairTester
	for _, pair := range cfg.Pairs {
		acc0, err := db.Accessor(pair[0])
		if err != nil {
			return nil, fmt.Errorf("smallgroup: %w", err)
		}
		acc1, err := db.Accessor(pair[1])
		if err != nil {
			return nil, fmt.Errorf("smallgroup: %w", err)
		}
		common0, err := commonRow(pair[0])
		if err != nil {
			return nil, err
		}
		common1, err := commonRow(pair[1])
		if err != nil {
			return nil, err
		}

		counts := make(map[engine.GroupKey]int64)
		tuple := make([]engine.Value, 2)
		var buf []byte
		for row := 0; row < n; row++ {
			if !common0(row) || !common1(row) {
				continue
			}
			tuple[0], tuple[1] = acc0.Value(row), acc1.Value(row)
			buf = engine.AppendKey(buf[:0], tuple)
			counts[engine.GroupKey(buf)]++
		}

		// Rare tuples: maximal ascending-frequency suffix with total mass
		// <= t*N.
		type kc struct {
			k engine.GroupKey
			c int64
		}
		all := make([]kc, 0, len(counts))
		for k, c := range counts {
			all = append(all, kc{k, c})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].c != all[j].c {
				return all[i].c < all[j].c
			}
			return all[i].k < all[j].k
		})
		budget := int64(cfg.SmallGroupFraction * float64(n))
		rare := make(map[engine.GroupKey]struct{})
		var rareRows int64
		for _, e := range all {
			if rareRows+e.c > budget {
				break
			}
			rare[e.k] = struct{}{}
			rareRows += e.c
		}
		if len(rare) == 0 {
			continue // no small pair groups
		}
		index := meta.AddPair(PairMeta{Cols: pair, Rare: rare, RareRows: rareRows})

		a0, a1, c0, c1 := acc0, acc1, common0, common1
		rareSet := rare
		// No captured buffers: the tester must be callable from concurrent
		// mask-building workers (a per-call stack allocation is acceptable —
		// pair tables are opt-in and rows per table are few).
		testers = append(testers, pairTester{
			index: index,
			test: func(row int) bool {
				if !c0(row) || !c1(row) {
					return false
				}
				tvals := [2]engine.Value{a0.Value(row), a1.Value(row)}
				tbuf := engine.AppendKey(make([]byte, 0, 32), tvals[:])
				_, ok := rareSet[engine.GroupKey(tbuf)]
				return ok
			},
		})
	}
	return testers, nil
}

func sortedCounts(counts map[engine.Value]int64) []engine.ValueCount {
	out := make([]engine.ValueCount, 0, len(counts))
	for v, c := range counts {
		out = append(out, engine.ValueCount{Value: v, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value.Less(out[j].Value)
	})
	return out
}

// bandTester returns the hierarchy level of a base row's value for one
// column, or -1 when the value is common (outside every band).
type bandTester func(row int) int

// colCounter accumulates value frequencies for one candidate column during
// scan 1.
type colCounter struct {
	name  string
	limit int

	code  engine.CodeAccessor // non-nil for dictionary-encoded columns
	codes []int64             // counts by dictionary code
	acc   engine.ColumnAccessor
	count map[engine.Value]int64 // counts for numeric columns
	alive bool
}

func newColCounter(name string, acc engine.ColumnAccessor, t engine.Type, limit int) *colCounter {
	c := &colCounter{name: name, limit: limit, acc: acc, alive: true}
	if ca, ok := acc.(engine.CodeAccessor); ok && t == engine.String {
		c.code = ca
	} else {
		c.count = make(map[engine.Value]int64)
	}
	return c
}

func (c *colCounter) observe(row int) {
	if !c.alive {
		return
	}
	if c.code != nil {
		code := c.code.Code(row)
		for int(code) >= len(c.codes) {
			c.codes = append(c.codes, 0)
		}
		c.codes[code]++
		return
	}
	c.count[c.acc.Value(row)]++
	if len(c.count) > c.limit {
		c.alive = false
		c.count = nil
	}
}

// bandBounds converts the level fractions into cumulative row budgets.
func bandBounds(n int64, levels []HierarchyLevel) []int64 {
	out := make([]int64, len(levels))
	for i, l := range levels {
		out[i] = int64(l.MaxFraction * float64(n))
	}
	return out
}

// assignBands walks value counts in ascending frequency order, assigning
// each value the first level whose cumulative budget still covers it, and
// returns the per-value level plus the mass stored at level 0.
func assignBands(asc []int64, bounds []int64) (levels []int, banded int, rareRows int64) {
	levels = make([]int, len(asc))
	var cum int64
	for i, cnt := range asc {
		cum += cnt
		lvl := -1
		for j, b := range bounds {
			if cum <= b {
				lvl = j
				break
			}
		}
		levels[i] = lvl
		if lvl < 0 {
			// Frequencies only grow; later values are common too.
			for k := i + 1; k < len(asc); k++ {
				levels[k] = -1
			}
			break
		}
		banded++
		rareRows = cum
	}
	return levels, banded, rareRows
}

// finish derives the band assignment and metadata for the column. ok is
// false when the column was dropped from S (τ exceeded, or no small groups).
func (c *colCounter) finish(n int64, levels []HierarchyLevel) (ColumnMeta, bandTester, bool) {
	if !c.alive {
		return ColumnMeta{}, nil, false
	}
	if c.code != nil {
		return c.finishDict(n, levels)
	}
	vcs := sortedCounts(c.count) // descending
	asc := make([]int64, len(vcs))
	for i := range vcs {
		asc[i] = vcs[len(vcs)-1-i].Count
	}
	lvls, banded, rareRows := assignBands(asc, bandBounds(n, levels))
	if banded == 0 {
		return ColumnMeta{}, nil, false
	}
	common := make(map[engine.Value]struct{})
	var exact map[engine.Value]struct{}
	if len(levels) > 1 {
		exact = make(map[engine.Value]struct{})
	}
	valueLevel := make(map[engine.Value]int, len(vcs))
	for i, vc := range vcs {
		lvl := lvls[len(vcs)-1-i]
		switch {
		case lvl < 0:
			common[vc.Value] = struct{}{}
		case lvl == 0 && exact != nil:
			exact[vc.Value] = struct{}{}
		}
		if lvl >= 0 {
			valueLevel[vc.Value] = lvl
		}
	}
	cm := ColumnMeta{Column: c.name, Common: common, Exact: exact, RareRows: rareRows, Distinct: len(vcs)}
	acc := c.acc
	tester := func(row int) int {
		if lvl, ok := valueLevel[acc.Value(row)]; ok {
			return lvl
		}
		return -1
	}
	return cm, tester, true
}

func (c *colCounter) finishDict(n int64, levels []HierarchyLevel) (ColumnMeta, bandTester, bool) {
	type cc struct {
		code  int32
		count int64
	}
	var vcs []cc
	for code, count := range c.codes {
		if count > 0 {
			vcs = append(vcs, cc{int32(code), count})
		}
	}
	if len(vcs) > c.limit {
		return ColumnMeta{}, nil, false
	}
	sort.Slice(vcs, func(i, j int) bool {
		if vcs[i].count != vcs[j].count {
			return vcs[i].count < vcs[j].count // ascending
		}
		return c.code.DictValue(vcs[i].code) < c.code.DictValue(vcs[j].code)
	})
	asc := make([]int64, len(vcs))
	for i, vc := range vcs {
		asc[i] = vc.count
	}
	lvls, banded, rareRows := assignBands(asc, bandBounds(n, levels))
	if banded == 0 {
		return ColumnMeta{}, nil, false
	}
	levelByCode := make([]int8, len(c.codes))
	for i := range levelByCode {
		levelByCode[i] = -1
	}
	common := make(map[engine.Value]struct{})
	var exact map[engine.Value]struct{}
	if len(levels) > 1 {
		exact = make(map[engine.Value]struct{})
	}
	for i, vc := range vcs {
		lvl := lvls[i]
		levelByCode[vc.code] = int8(lvl)
		v := engine.StringVal(c.code.DictValue(vc.code))
		switch {
		case lvl < 0:
			common[v] = struct{}{}
		case lvl == 0 && exact != nil:
			exact[v] = struct{}{}
		}
	}
	cm := ColumnMeta{Column: c.name, Common: common, Exact: exact, RareRows: rareRows, Distinct: len(vcs)}
	code := c.code
	tester := func(row int) int { return int(levelByCode[code.Code(row)]) }
	return cm, tester, true
}
