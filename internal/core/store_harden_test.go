package core

import (
	"bufio"
	"bytes"
	"math"
	"strings"
	"testing"
)

// craftStore builds a raw store stream header-by-header so tests can plant
// hostile length prefixes at exact positions. build writes everything after
// the fixed header fields.
func craftStore(maxTables, ncols uint32, build func(w *bufio.Writer)) []byte {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	w.WriteString(storeMagic)
	putU32(w, storeVersion)
	putF64(w, 0.95)      // confidence level
	putU32(w, maxTables) // MaxTablesPerQuery
	putF64(w, 1)         // overall scale
	putU64(w, 0)         // data generation (v2)
	putU64(w, 1000)      // base rows
	putU32(w, ncols)
	if build != nil {
		build(w)
	}
	w.Flush()
	return buf.Bytes()
}

// TestLoadSmallGroupHostileLengthPrefixes proves a corrupt header cannot
// trigger a huge allocation: every length prefix is sanity-capped and the
// loader fails with a descriptive error instead of OOMing.
func TestLoadSmallGroupHostileLengthPrefixes(t *testing.T) {
	huge := uint32(math.MaxUint32 - 7)
	cases := []struct {
		name    string
		stream  []byte
		wantErr string
	}{
		{
			name:    "oversized max tables",
			stream:  craftStore(huge, 0, nil),
			wantErr: "unreasonable max tables",
		},
		{
			name:    "oversized column count",
			stream:  craftStore(3, huge, nil),
			wantErr: "unreasonable column count",
		},
		{
			name: "oversized value set",
			stream: craftStore(3, 1, func(w *bufio.Writer) {
				putString(w, "col")
				putU32(w, 10)   // distinct
				putU64(w, 5)    // rare rows
				putU32(w, huge) // common set size — hostile
			}),
			wantErr: "unreasonable value set size",
		},
		{
			name: "oversized pair count",
			stream: craftStore(3, 0, func(w *bufio.Writer) {
				putU32(w, huge) // npairs
			}),
			wantErr: "unreasonable pair count",
		},
		{
			name: "oversized rare key count",
			stream: craftStore(3, 0, func(w *bufio.Writer) {
				putU32(w, 1) // npairs
				putString(w, "a")
				putString(w, "b")
				putU64(w, 7)    // rare rows
				putU32(w, huge) // nk — hostile
			}),
			wantErr: "unreasonable rare key count",
		},
		{
			name: "oversized string length",
			stream: craftStore(3, 1, func(w *bufio.Writer) {
				putU32(w, huge) // column name length — hostile
			}),
			wantErr: "unreasonable string length",
		},
		{
			name:    "truncated mid-header",
			stream:  craftStore(3, 2, nil)[:20],
			wantErr: "",
		},
		{
			name:    "empty",
			stream:  nil,
			wantErr: "reading store header",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := LoadSmallGroup(bytes.NewReader(c.stream))
			if err == nil {
				t.Fatalf("hostile stream accepted: %v", p)
			}
			if c.wantErr != "" && !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestSnapshotStoreRoundTrip covers the checksummed container around the
// raw store, and LoadSmallGroupAny's format sniffing for both formats.
func TestSnapshotStoreRoundTrip(t *testing.T) {
	db := skewedDB(t, 3000)
	orig := prep(t, db, SmallGroupConfig{BaseRate: 0.05, DistinctLimit: 100, Seed: 3})

	var snap bytes.Buffer
	if err := SaveSmallGroupSnapshot(&snap, orig); err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	if err := SaveSmallGroup(&raw, orig); err != nil {
		t.Fatal(err)
	}

	for name, b := range map[string][]byte{"snapshot": snap.Bytes(), "legacy raw": raw.Bytes()} {
		loaded, err := LoadSmallGroupAny(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if loaded.SampleRows() != orig.SampleRows() {
			t.Errorf("%s: sample rows %d vs %d", name, loaded.SampleRows(), orig.SampleRows())
		}
	}
	if _, err := LoadSmallGroupAny(bytes.NewReader([]byte("GARBAGE!"))); err == nil ||
		!strings.Contains(err.Error(), "unrecognised") {
		t.Fatalf("garbage magic: err = %v", err)
	}

	// The container must reject corruption anywhere, including in table data
	// the raw loader would happily decode.
	enc := snap.Bytes()
	for _, off := range []int{10, len(enc) / 2, len(enc) - 10} {
		mut := append([]byte(nil), enc...)
		mut[off] ^= 0x20
		if _, err := LoadSmallGroupSnapshot(bytes.NewReader(mut)); err == nil {
			t.Errorf("bit flip at %d accepted", off)
		}
	}
	for _, cut := range []int{0, 7, len(enc) / 2, len(enc) - 1} {
		if _, err := LoadSmallGroupSnapshot(bytes.NewReader(enc[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}
