package core

import (
	"math"
	"strings"
	"testing"

	"dynsample/internal/engine"
	"dynsample/internal/randx"
)

// pairDB builds a table where the columns a and b are individually balanced
// (no single-column small groups at reasonable t) but one value combination
// is rare: a correlation that only a pair table can capture.
func pairDB(t *testing.T, n int) *engine.Database {
	t.Helper()
	a := engine.NewColumn("a", engine.String)
	b := engine.NewColumn("b", engine.String)
	m := engine.NewColumn("m", engine.Int)
	fact := engine.NewTable("fact", a, b, m)
	rng := randx.New(77)
	for i := 0; i < n; i++ {
		switch r := rng.Float64(); {
		case r < 0.495:
			a.AppendString("A")
			b.AppendString("X")
		case r < 0.99:
			a.AppendString("B")
			b.AppendString("Y")
		case r < 0.995:
			a.AppendString("A")
			b.AppendString("Y") // rare combination ~0.5%
		default:
			b.AppendString("X")
			a.AppendString("B") // rare combination ~0.5%
		}
		m.AppendInt(int64(i%13) + 1)
		fact.EndRow()
	}
	return engine.MustNewDatabase("pairs", fact)
}

func TestPairTablesCaptureRareCombinations(t *testing.T) {
	db := pairDB(t, 20000)
	p := prep(t, db, SmallGroupConfig{
		BaseRate:           0.02,
		SmallGroupFraction: 0.02,
		Seed:               1,
		Pairs:              [][2]string{{"a", "b"}},
	})
	meta := p.Meta()
	// a and b have no single-column small groups (all values are ~50%), so
	// the pair table must exist on its own.
	if _, ok := meta.Index("a"); ok {
		t.Error("column a unexpectedly in S")
	}
	if len(meta.Pairs()) != 1 {
		t.Fatalf("pairs = %d, want 1", len(meta.Pairs()))
	}
	pm := meta.Pairs()[0]
	if len(pm.Rare) != 2 {
		t.Errorf("rare tuples = %d, want 2 (A,Y) and (B,X)", len(pm.Rare))
	}

	q := &engine.Query{GroupBy: []string{"a", "b"}, Aggs: []engine.Aggregate{{Kind: engine.Count}, {Kind: engine.Sum, Col: "m"}}}
	exact, err := engine.ExecuteExact(db, q)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := p.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	rareKeys := []engine.GroupKey{
		engine.EncodeKey([]engine.Value{engine.StringVal("A"), engine.StringVal("Y")}),
		engine.EncodeKey([]engine.Value{engine.StringVal("B"), engine.StringVal("X")}),
	}
	for _, k := range rareKeys {
		eg, ag := exact.Group(k), ans.Result.Group(k)
		if eg == nil {
			t.Fatal("fixture broken: rare combination absent from exact answer")
		}
		if ag == nil {
			t.Fatalf("rare combination %v missing from answer", engine.DecodeKey(k))
		}
		if !ag.Exact {
			t.Errorf("rare combination %v not exact", engine.DecodeKey(k))
		}
		for i := range eg.Vals {
			if math.Abs(eg.Vals[i]-ag.Vals[i]) > 1e-9 {
				t.Errorf("combination %v agg %d: exact %g approx %g", engine.DecodeKey(k), i, eg.Vals[i], ag.Vals[i])
			}
		}
	}
}

func TestPairTablesNotUsedForPartialGroupBy(t *testing.T) {
	db := pairDB(t, 10000)
	p := prep(t, db, SmallGroupConfig{
		BaseRate: 0.02, SmallGroupFraction: 0.02, Seed: 2, Pairs: [][2]string{{"a", "b"}},
	})
	// Grouping by a alone must not read the pair table: 1 step (overall only,
	// since a has no single-column table).
	plan := p.Plan(&engine.Query{GroupBy: []string{"a"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}})
	if len(plan.Steps) != 1 {
		t.Errorf("plan steps = %d, want 1 (overall only)", len(plan.Steps))
	}
	// Grouping by both uses the pair table.
	plan = p.Plan(&engine.Query{GroupBy: []string{"b", "a"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}})
	if len(plan.Steps) != 2 {
		t.Errorf("plan steps = %d, want 2", len(plan.Steps))
	}
}

func TestPairTablesRateOneExact(t *testing.T) {
	db := pairDB(t, 5000)
	p := prep(t, db, SmallGroupConfig{
		BaseRate: 1, SmallGroupFraction: 0.02, Seed: 3, Pairs: [][2]string{{"a", "b"}},
	})
	q := &engine.Query{GroupBy: []string{"a", "b"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
	exact, _ := engine.ExecuteExact(db, q)
	ans, err := p.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if exact.NumGroups() != ans.Result.NumGroups() {
		t.Fatalf("groups %d vs %d", exact.NumGroups(), ans.Result.NumGroups())
	}
	for _, k := range exact.Keys() {
		if math.Abs(exact.Group(k).Vals[0]-ans.Result.Group(k).Vals[0]) > 1e-9 {
			t.Errorf("group %v: %g vs %g", engine.DecodeKey(k), exact.Group(k).Vals[0], ans.Result.Group(k).Vals[0])
		}
	}
}

func TestPairUnknownColumnRejected(t *testing.T) {
	db := pairDB(t, 1000)
	_, err := NewSmallGroup(SmallGroupConfig{
		BaseRate: 0.1, Pairs: [][2]string{{"a", "nope"}},
	}).Preprocess(db)
	if err == nil {
		t.Error("unknown pair column not rejected")
	}
}

func TestMultiLevelHierarchy(t *testing.T) {
	db := skewedDB(t, 30000)
	levels := []HierarchyLevel{
		{MaxFraction: 0.01, Rate: 1},    // smallest groups: exact
		{MaxFraction: 0.08, Rate: 0.25}, // medium groups: 25% sample
	}
	p := prep(t, db, SmallGroupConfig{
		BaseRate: 0.02, DistinctLimit: 100, Seed: 4, Levels: levels,
	})
	meta := p.Meta()
	cm, ok := meta.Column("a")
	if !ok {
		t.Fatal("column a missing from S")
	}
	if cm.Exact == nil {
		t.Fatal("multi-level column must carry an explicit Exact set")
	}
	// There must be a medium band: values neither common nor exact.
	medium := cm.Distinct - len(cm.Common) - len(cm.Exact)
	if medium <= 0 {
		t.Fatalf("no medium-band values: distinct=%d common=%d exact=%d", cm.Distinct, len(cm.Common), len(cm.Exact))
	}

	// The table must carry weights (medium rows are subsampled).
	ix, _ := meta.Index("a")
	tbl := p.Tables()[ix]
	if tbl.Weights == nil {
		t.Fatal("multi-level table has no weights")
	}
	sawWeighted := false
	for i := 0; i < tbl.NumRows(); i++ {
		w := tbl.RowWeight(i)
		if w != 1 && math.Abs(w-4) > 1e-9 {
			t.Fatalf("row %d weight %g, want 1 or 4", i, w)
		}
		if w != 1 {
			sawWeighted = true
		}
	}
	if !sawWeighted {
		t.Error("no medium-band rows in the table")
	}

	q := &engine.Query{GroupBy: []string{"a"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
	exact, _ := engine.ExecuteExact(db, q)
	ans, err := p.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range exact.Keys() {
		eg := exact.Group(k)
		ag := ans.Result.Group(k)
		v := eg.Key[0]
		switch {
		case meta.IsExactValue("a", v):
			if ag == nil || !ag.Exact || math.Abs(ag.Vals[0]-eg.Vals[0]) > 1e-9 {
				t.Errorf("exact-band group %v wrong: %+v", v, ag)
			}
		case !meta.IsCommon("a", v):
			// Medium band: present (sampled at 25% of a >=1%-mass group) and
			// estimated, not exact.
			if ag == nil {
				t.Errorf("medium-band group %v missing", v)
				continue
			}
			if ag.Exact {
				t.Errorf("medium-band group %v wrongly marked exact", v)
			}
			rel := math.Abs(ag.Vals[0]-eg.Vals[0]) / eg.Vals[0]
			if rel > 0.9 {
				t.Errorf("medium-band group %v rel err %.2f", v, rel)
			}
		}
	}
}

func TestMultiLevelEstimatesUnbiased(t *testing.T) {
	db := skewedDB(t, 10000)
	q := &engine.Query{GroupBy: []string{"a"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
	exact, _ := engine.ExecuteExact(db, q)
	// Pick a medium-band value: run one prep to find one.
	p0 := prep(t, db, SmallGroupConfig{
		BaseRate: 0.02, DistinctLimit: 100, Seed: 0,
		Levels: []HierarchyLevel{{MaxFraction: 0.01, Rate: 1}, {MaxFraction: 0.1, Rate: 0.3}},
	})
	var target engine.Value
	for _, k := range exact.Keys() {
		v := exact.Group(k).Key[0]
		if !p0.Meta().IsCommon("a", v) && !p0.Meta().IsExactValue("a", v) {
			target = v
			break
		}
	}
	if target == (engine.Value{}) {
		t.Skip("no medium-band value in fixture")
	}
	key := engine.EncodeKey([]engine.Value{target})
	truth := exact.Group(key).Vals[0]
	var sum float64
	const trials = 50
	for seed := int64(1); seed <= trials; seed++ {
		p := prep(t, db, SmallGroupConfig{
			BaseRate: 0.02, DistinctLimit: 100, Seed: seed,
			Levels: []HierarchyLevel{{MaxFraction: 0.01, Rate: 1}, {MaxFraction: 0.1, Rate: 0.3}},
		})
		ans, err := p.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if g := ans.Result.Group(key); g != nil {
			sum += g.Vals[0]
		}
	}
	mean := sum / trials
	if math.Abs(mean-truth)/truth > 0.12 {
		t.Errorf("medium-band estimate mean %g vs truth %g", mean, truth)
	}
}

func TestLevelValidation(t *testing.T) {
	db := skewedDB(t, 500)
	bad := [][]HierarchyLevel{
		{{MaxFraction: 0.01, Rate: 0.5}},                                                               // first rate != 1
		{{MaxFraction: 0, Rate: 1}},                                                                    // zero fraction
		{{MaxFraction: 0.05, Rate: 1}, {MaxFraction: 0.02, Rate: 0.5}},                                 // fractions not increasing
		{{MaxFraction: 0.01, Rate: 1}, {MaxFraction: 0.05, Rate: 1}},                                   // rates not decreasing
		{{MaxFraction: 0.01, Rate: 1}, {MaxFraction: 0.05, Rate: 1.5}},                                 // rate > 1
		{{MaxFraction: 1.5, Rate: 1}},                                                                  // fraction > 1
		{{MaxFraction: 0.01, Rate: 1}, {MaxFraction: 0.05, Rate: -0.1}},                                // negative rate
		{{MaxFraction: 0.01, Rate: 1}, {MaxFraction: 0.05, Rate: 0.5}, {MaxFraction: 0.04, Rate: 0.1}}, // 3rd not increasing
	}
	for i, lv := range bad {
		if _, err := NewSmallGroup(SmallGroupConfig{BaseRate: 0.05, Levels: lv}).Preprocess(db); err == nil {
			t.Errorf("levels %d not rejected: %+v", i, lv)
		}
	}
}

func TestRewriteSQLWithPairTable(t *testing.T) {
	db := pairDB(t, 10000)
	p := prep(t, db, SmallGroupConfig{
		BaseRate: 0.01, SmallGroupFraction: 0.02, Seed: 5, Pairs: [][2]string{{"a", "b"}},
	})
	q := &engine.Query{GroupBy: []string{"a", "b"}, Aggs: []engine.Aggregate{{Kind: engine.Count}}}
	sql := p.Plan(q).SQL()
	if want := "FROM sg_a__b"; !strings.Contains(sql, want) {
		t.Errorf("rewritten SQL missing %q:\n%s", want, sql)
	}
}
