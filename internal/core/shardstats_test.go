package core

import (
	"encoding/json"
	"testing"
)

func TestComputeShardStats(t *testing.T) {
	db := skewedDB(t, 20000)
	sys := NewSystem(db)
	cfg := SmallGroupConfig{BaseRate: 0.02, SmallGroupFraction: 0.08, DistinctLimit: 100, Seed: 1}
	if err := sys.AddStrategy(NewSmallGroup(cfg)); err != nil {
		t.Fatal(err)
	}
	name := NewSmallGroup(cfg).Name()
	st, err := ComputeShardStats(sys, name, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st.ShardID != 2 || st.Shards != 8 {
		t.Errorf("shard slot = %d/%d, want 2/8", st.ShardID, st.Shards)
	}
	if st.Rows != 20000 {
		t.Errorf("rows = %d, want 20000", st.Rows)
	}
	if st.SampleRows <= 0 {
		t.Errorf("sampleRows = %d, want > 0", st.SampleRows)
	}
	if st.RareMass <= 0 || st.RareMass >= 1 {
		t.Errorf("rareMass = %v, want in (0, 1)", st.RareMass)
	}
	if st.ScanRowsPerSecond <= 0 {
		t.Errorf("scanRate = %v, want > 0", st.ScanRowsPerSecond)
	}
	// a has 12 distinct string values, b has 4; both should be summarised
	// completely. Int columns (m, u) must not appear.
	for _, col := range []string{"m", "u"} {
		if _, ok := st.Columns[col]; ok {
			t.Errorf("non-string column %q summarised", col)
		}
	}
	a := st.Columns["a"]
	if a.Truncated || len(a.Values) != 12 {
		t.Errorf("column a summary = %d values truncated=%v, want 12 complete", len(a.Values), a.Truncated)
	}
	if !st.MayContain("a", "A0") {
		t.Error("MayContain denies a value the shard holds")
	}
	if st.MayContain("a", "Z9") {
		t.Error("MayContain admits a value a complete summary excludes")
	}
	// Unsummarised columns and unknown columns must err toward true.
	if !st.MayContain("m", "1") || !st.MayContain("nope", "x") {
		t.Error("MayContain denies on a column with no summary")
	}

	// The summary must survive its JSON trip to the coordinator.
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var rt ShardStats
	if err := json.Unmarshal(raw, &rt); err != nil {
		t.Fatal(err)
	}
	if rt.Rows != st.Rows || rt.RareMass != st.RareMass || len(rt.Columns) != len(st.Columns) {
		t.Error("ShardStats did not survive JSON round trip")
	}
	if rt.MayContain("a", "Z9") {
		t.Error("round-tripped summary lost its value set")
	}
}

func TestComputeShardStatsUnknownStrategy(t *testing.T) {
	sys := NewSystem(skewedDB(t, 100))
	if _, err := ComputeShardStats(sys, "nope", 0, 1); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestMayContainTruncated(t *testing.T) {
	st := &ShardStats{Columns: map[string]ShardColumnStats{
		"c": {Values: []string{"x"}, Truncated: true},
	}}
	if !st.MayContain("c", "y") {
		t.Error("truncated summary used to prove absence")
	}
	var nilStats *ShardStats
	if !nilStats.MayContain("c", "y") {
		t.Error("nil stats must admit everything")
	}
}

func TestWidenError(t *testing.T) {
	cases := []struct{ e, f, want float64 }{
		{0.05, 0, 0.05},  // nothing missing: unchanged
		{0.05, -1, 0.05}, // negative clamps to unchanged
		{0, 0.5, 1},      // half the data gone: +1.0 relative, capped
		{0.1, 0.2, 0.35}, // 0.1 + 0.2/0.8
		{0.2, 1, 1},      // everything gone saturates
		{0.9, 0.5, 1},    // cap at 1
	}
	for _, tc := range cases {
		if got := WidenError(tc.e, tc.f); !almostEq(got, tc.want) {
			t.Errorf("WidenError(%v, %v) = %v, want %v", tc.e, tc.f, got, tc.want)
		}
	}
	// Widening is monotone in the missing fraction.
	prev := -1.0
	for f := 0.0; f < 1; f += 0.05 {
		w := WidenError(0.03, f)
		if w < prev {
			t.Fatalf("WidenError not monotone at f=%v: %v < %v", f, w, prev)
		}
		prev = w
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}
