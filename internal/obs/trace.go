package obs

import (
	"context"
	"sync"
	"time"
)

// Stage is one timed phase of the runtime pipeline: parse → select →
// execute → combine → finalize → present. Offsets are relative to the
// trace start so stages reconstruct the query's timeline.
type Stage struct {
	Name         string `json:"name"`
	OffsetMicros int64  `json:"offset_micros"`
	Micros       int64  `json:"micros"`
}

// SampleExec is the execution record of one rewrite step — one sample table
// of the selected set. Together the entries answer "which small-group
// tables answered my query, and what did each cost".
type SampleExec struct {
	// Table is the sample source name (e.g. "sg_s_region", "sg_overall").
	Table string `json:"table"`
	// Rows is the number of rows this step scanned.
	Rows int64 `json:"rows"`
	// Shards is the number of partitioned-scan shards the step was split into.
	Shards int `json:"shards"`
	// Scale is the aggregate scale factor (inverse sampling rate; 1 for
	// small group tables, which are not downsampled).
	Scale  float64 `json:"scale,omitempty"`
	Micros int64   `json:"micros"`
}

// PlannerCandidate is one plan the bounded-query planner considered, with
// its predictions.
type PlannerCandidate struct {
	// Plan names the candidate, e.g. "sg_store_region+sg_overall/0.25".
	Plan string `json:"plan"`
	// Rows is the number of sample (or base, for the exact plan) rows the
	// candidate scans.
	Rows int64 `json:"rows"`
	// PredictedError is the model-predicted mean per-group relative error.
	PredictedError float64 `json:"predicted_error"`
	// PredictedLatencyMicros is the predicted scan latency.
	PredictedLatencyMicros int64 `json:"predicted_latency_micros"`
	// Exact marks the exact-fallback candidate.
	Exact bool `json:"exact,omitempty"`
	// Feasible reports whether the candidate satisfied the requested bounds.
	Feasible bool `json:"feasible"`
}

// PlannerData is the planner's decision record for one bounded query: the
// bounds, every candidate considered, the chosen plan, and predicted vs
// achieved error. It appears in explain traces and /debug/slowlog entries.
type PlannerData struct {
	ErrorBound      float64 `json:"error_bound,omitempty"`
	TimeBoundMicros int64   `json:"time_bound_micros,omitempty"`
	// Confidence is the level the error bound and intervals are stated at.
	Confidence float64 `json:"confidence"`
	// Chosen names the selected candidate.
	Chosen         string  `json:"chosen"`
	PredictedError float64 `json:"predicted_error"`
	AchievedError  float64 `json:"achieved_error"`
	// Candidates lists every plan considered, cheapest first.
	Candidates []PlannerCandidate `json:"candidates,omitempty"`
	// Caveats say when the prediction is unreliable for this query (see
	// docs/ACCURACY.md).
	Caveats []string `json:"caveats,omitempty"`
}

// TraceData is the immutable snapshot of a finished (or in-progress) trace;
// it is what /debug/slowlog stores and what an "explain": true response
// embeds.
type TraceData struct {
	RequestID string `json:"request_id,omitempty"`
	SQL       string `json:"sql,omitempty"`
	Strategy  string `json:"strategy,omitempty"`
	Start     string `json:"start,omitempty"` // RFC3339Nano
	// Status is the terminal outcome: ok, bad_request, timeout, canceled,
	// internal, shed.
	Status string  `json:"status,omitempty"`
	Stages []Stage `json:"stages"`
	// Samples is the selected sample set with per-step execution cost; empty
	// for exact queries.
	Samples []SampleExec `json:"samples,omitempty"`
	// SamplingFraction is the fraction of base-table rows the selected plan
	// scans (selected sample rows / base rows).
	SamplingFraction float64 `json:"sampling_fraction,omitempty"`
	// Degraded is set when deadline pressure swapped the plan for the
	// overall-sample-only fallback.
	Degraded bool `json:"degraded,omitempty"`
	// Planner is the bounded-query planner's decision record; nil for
	// unbounded queries.
	Planner     *PlannerData `json:"planner,omitempty"`
	RowsRead    int64        `json:"rows_read"`
	TotalMicros int64        `json:"total_micros"`
}

// Trace accumulates the observability record of one query as it moves
// through the pipeline. It is carried by the request context (WithTrace /
// TraceFrom); instrumentation sites that find no trace pay one context
// lookup and nothing else. Methods are safe for concurrent use — rewrite
// steps fan out across goroutines and record their SampleExec concurrently.
type Trace struct {
	start time.Time
	mu    sync.Mutex
	data  TraceData
}

// NewTrace starts a trace for one query.
func NewTrace(requestID, sql string) *Trace {
	t := &Trace{start: time.Now()}
	t.data.RequestID = requestID
	t.data.SQL = sql
	t.data.Start = t.start.UTC().Format(time.RFC3339Nano)
	return t
}

func (t *Trace) lock()   { t.mu.Lock() }
func (t *Trace) unlock() { t.mu.Unlock() }

// StartStage begins a named stage and returns the function that ends it.
// The usual shape is:
//
//	end := tr.StartStage("execute")
//	... work ...
//	end()
func (t *Trace) StartStage(name string) (end func()) {
	begin := time.Now()
	return func() {
		st := Stage{
			Name:         name,
			OffsetMicros: begin.Sub(t.start).Microseconds(),
			Micros:       time.Since(begin).Microseconds(),
		}
		t.lock()
		t.data.Stages = append(t.data.Stages, st)
		t.unlock()
	}
}

// AddSample records one rewrite step's execution.
func (t *Trace) AddSample(s SampleExec) {
	t.lock()
	t.data.Samples = append(t.data.Samples, s)
	t.unlock()
}

// SetSQL records the query text once it is known (after request decode).
func (t *Trace) SetSQL(sql string) {
	t.lock()
	t.data.SQL = sql
	t.unlock()
}

// SetStrategy records which strategy answered.
func (t *Trace) SetStrategy(name string) {
	t.lock()
	t.data.Strategy = name
	t.unlock()
}

// SetSamplingFraction records the selected plan's scan fraction.
func (t *Trace) SetSamplingFraction(f float64) {
	t.lock()
	t.data.SamplingFraction = f
	t.unlock()
}

// SetDegraded flags the deadline-pressure fallback.
func (t *Trace) SetDegraded(d bool) {
	t.lock()
	t.data.Degraded = d
	t.unlock()
}

// SetPlanner records the bounded-query planner's decision.
func (t *Trace) SetPlanner(p *PlannerData) {
	t.lock()
	t.data.Planner = p
	t.unlock()
}

// SetRowsRead records the total rows the query scanned.
func (t *Trace) SetRowsRead(n int64) {
	t.lock()
	t.data.RowsRead = n
	t.unlock()
}

// Finish stamps the terminal status and total duration and returns the
// completed snapshot. Call it once, after the last stage ended.
func (t *Trace) Finish(status string) TraceData {
	t.lock()
	t.data.Status = status
	t.data.TotalMicros = time.Since(t.start).Microseconds()
	d := t.snapshotLocked()
	t.unlock()
	return d
}

// Snapshot returns a copy of the trace so far.
func (t *Trace) Snapshot() TraceData {
	t.lock()
	d := t.snapshotLocked()
	t.unlock()
	return d
}

func (t *Trace) snapshotLocked() TraceData {
	d := t.data
	d.Stages = append([]Stage(nil), t.data.Stages...)
	d.Samples = append([]SampleExec(nil), t.data.Samples...)
	return d
}

type traceKey struct{}

// WithTrace attaches a trace to a context; the runtime pipeline picks it up
// with TraceFrom at each stage boundary.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil when the query is untraced
// (the no-overhead path).
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

type requestIDKey struct{}

// WithRequestID attaches the request identifier to a context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the context's request identifier, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
