package obs

import (
	"sort"
	"sync"
	"time"
)

// DefaultSlowLogSize is how many entries a SlowLog retains when constructed
// with size 0.
const DefaultSlowLogSize = 32

// SlowLogEntry is one retained query: identity, outcome, latency and the
// full pipeline trace.
type SlowLogEntry struct {
	Time      time.Time `json:"time"`
	RequestID string    `json:"request_id,omitempty"`
	SQL       string    `json:"sql"`
	Status    string    `json:"status"`
	Micros    int64     `json:"micros"`
	Trace     TraceData `json:"trace"`
}

// SlowLog retains the N slowest queries seen so far, with their traces. The
// store is a fixed-size bounded set ordered by latency: Observe is O(N) in
// the retained size (N is small — tens of entries) and only runs once per
// completed query, so it never touches the scan hot path.
type SlowLog struct {
	mu      sync.Mutex
	size    int
	entries []SlowLogEntry // sorted slowest-first
}

// NewSlowLog returns a log retaining the n slowest queries (0 means
// DefaultSlowLogSize).
func NewSlowLog(n int) *SlowLog {
	if n <= 0 {
		n = DefaultSlowLogSize
	}
	return &SlowLog{size: n}
}

// Size returns the retention capacity.
func (l *SlowLog) Size() int { return l.size }

// Observe offers one completed query to the log; it is kept if it ranks
// among the N slowest seen so far.
func (l *SlowLog) Observe(e SlowLogEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) == l.size && e.Micros <= l.entries[len(l.entries)-1].Micros {
		return // faster than everything retained
	}
	// Insert in slowest-first order, then clip the tail.
	i := sort.Search(len(l.entries), func(i int) bool { return l.entries[i].Micros < e.Micros })
	l.entries = append(l.entries, SlowLogEntry{})
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = e
	if len(l.entries) > l.size {
		l.entries = l.entries[:l.size]
	}
}

// Slowest returns the retained entries, slowest first.
func (l *SlowLog) Slowest() []SlowLogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]SlowLogEntry(nil), l.entries...)
}

// Len returns how many entries are currently retained.
func (l *SlowLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}
