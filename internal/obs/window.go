package obs

import (
	"sort"
	"sync"
)

// Window is a fixed-size sliding window of float64 observations with
// quantile queries, used by the cluster coordinator to track recent
// per-shard latencies and derive the hedging delay ("hedge after the p95 of
// recent attempts"). It is a ring buffer: once full, each new observation
// evicts the oldest, so the quantile tracks the recent regime rather than
// the whole process lifetime (a histogram's cumulative buckets cannot do
// that, and hedging needs to adapt when a shard slows down).
//
// All methods are safe for concurrent use.
type Window struct {
	mu   sync.Mutex
	buf  []float64
	next int
	full bool
}

// NewWindow returns a window keeping the last size observations. size must
// be positive.
func NewWindow(size int) *Window {
	if size <= 0 {
		panic("obs: NewWindow size must be positive")
	}
	return &Window{buf: make([]float64, size)}
}

// Observe records one observation, evicting the oldest if the window is full.
func (w *Window) Observe(v float64) {
	w.mu.Lock()
	w.buf[w.next] = v
	w.next++
	if w.next == len(w.buf) {
		w.next = 0
		w.full = true
	}
	w.mu.Unlock()
}

// Len returns the number of observations currently held.
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.full {
		return len(w.buf)
	}
	return w.next
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of the held observations
// using nearest-rank on a sorted copy, and false if the window is empty.
// With n observations the cost is O(n log n); windows are small (hundreds of
// entries), so this stays off any per-row path.
func (w *Window) Quantile(q float64) (float64, bool) {
	w.mu.Lock()
	n := w.next
	if w.full {
		n = len(w.buf)
	}
	if n == 0 {
		w.mu.Unlock()
		return 0, false
	}
	tmp := make([]float64, n)
	copy(tmp, w.buf[:n])
	w.mu.Unlock()
	sort.Float64s(tmp)
	if q <= 0 {
		return tmp[0], true
	}
	if q >= 1 {
		return tmp[n-1], true
	}
	idx := int(q * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return tmp[idx], true
}
