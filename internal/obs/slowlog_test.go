package obs

import (
	"sync"
	"testing"
)

func TestSlowLogKeepsSlowest(t *testing.T) {
	l := NewSlowLog(3)
	for _, us := range []int64{10, 50, 20, 5, 100, 1} {
		l.Observe(SlowLogEntry{SQL: "q", Micros: us})
	}
	got := l.Slowest()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, want := range []int64{100, 50, 20} {
		if got[i].Micros != want {
			t.Fatalf("entry %d = %dus, want %dus (%+v)", i, got[i].Micros, want, got)
		}
	}
}

func TestSlowLogDefaultSize(t *testing.T) {
	l := NewSlowLog(0)
	if l.Size() != DefaultSlowLogSize {
		t.Fatalf("size = %d", l.Size())
	}
}

func TestSlowLogConcurrentObserve(t *testing.T) {
	l := NewSlowLog(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Observe(SlowLogEntry{Micros: int64(w*1000 + i)})
			}
		}(w)
	}
	wg.Wait()
	got := l.Slowest()
	if len(got) != 8 {
		t.Fatalf("len = %d", len(got))
	}
	// The 8 slowest overall are 7199..7192, in descending order.
	for i := 1; i < len(got); i++ {
		if got[i].Micros > got[i-1].Micros {
			t.Fatalf("not sorted: %v", got)
		}
	}
	if got[0].Micros != 7199 || got[7].Micros != 7192 {
		t.Fatalf("wrong retained set: %v", got)
	}
}
