// Package obs is the stdlib-only observability layer: runtime metrics with
// Prometheus text exposition, per-query traces, and a slow-query log.
//
// The paper's dynamic sample selection is a middleware whose value hinges on
// knowing *which* samples were picked, how much data was scanned, and what
// accuracy/latency that bought (§3 runtime phase, §5 evaluation). This
// package provides the accounting: every layer of the system registers
// counters, gauges and histograms in a shared Registry (Default), the HTTP
// server threads a Trace through the runtime pipeline via the request
// context, and the slowest queries are retained — with their traces — in a
// fixed-size SlowLog.
//
// # Cost model
//
// Metrics are always on. An increment is one atomic add (plus one lock-free
// map lookup for labelled series), so instrumentation sits comfortably off
// the hot path: the per-row scan kernels are never touched — counters are
// bumped once per scan, per plan step, or per request. Tracing is opt-in per
// query: when no Trace rides the context, TraceFrom returns nil and every
// instrumentation site reduces to a single context lookup.
package obs

import (
	"crypto/rand"
	"encoding/hex"
)

// defaultRegistry is the process-wide metric registry. Packages register
// their instruments here at init; the server exposes it at GET /metrics.
var defaultRegistry = NewRegistry()

// Default returns the process-wide Registry.
func Default() *Registry { return defaultRegistry }

// NewRequestID returns a fresh 16-hex-char request identifier, used when a
// client did not supply an X-Request-ID header.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to a
		// fixed marker rather than panicking in a middleware.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}
