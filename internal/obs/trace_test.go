package obs

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestTraceStagesAndSamples(t *testing.T) {
	tr := NewTrace("req-1", "SELECT 1")
	end := tr.StartStage("parse")
	time.Sleep(time.Millisecond)
	end()
	tr.AddSample(SampleExec{Table: "sg_a", Rows: 10, Shards: 1, Scale: 1, Micros: 5})
	tr.SetStrategy("smallgroup")
	tr.SetRowsRead(10)
	tr.SetSamplingFraction(0.05)
	d := tr.Finish("ok")

	if d.RequestID != "req-1" || d.SQL != "SELECT 1" || d.Status != "ok" {
		t.Fatalf("identity fields: %+v", d)
	}
	if len(d.Stages) != 1 || d.Stages[0].Name != "parse" || d.Stages[0].Micros <= 0 {
		t.Fatalf("stages: %+v", d.Stages)
	}
	if d.TotalMicros < d.Stages[0].Micros {
		t.Fatalf("total %d < stage %d", d.TotalMicros, d.Stages[0].Micros)
	}
	if len(d.Samples) != 1 || d.Samples[0].Table != "sg_a" {
		t.Fatalf("samples: %+v", d.Samples)
	}
	if _, err := json.Marshal(d); err != nil {
		t.Fatalf("trace data not marshallable: %v", err)
	}
}

func TestTraceConcurrentRecording(t *testing.T) {
	tr := NewTrace("", "")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			end := tr.StartStage("s")
			tr.AddSample(SampleExec{Table: "t", Rows: int64(i)})
			end()
		}(i)
	}
	wg.Wait()
	d := tr.Finish("ok")
	if len(d.Stages) != 16 || len(d.Samples) != 16 {
		t.Fatalf("stages=%d samples=%d, want 16 each", len(d.Stages), len(d.Samples))
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Fatal("background context has a trace")
	}
	tr := NewTrace("id", "sql")
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace did not round-trip through the context")
	}
	ctx = WithRequestID(ctx, "abc")
	if RequestIDFrom(ctx) != "abc" {
		t.Fatal("request id did not round-trip")
	}
	if RequestIDFrom(context.Background()) != "" {
		t.Fatal("background context has a request id")
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || a == b {
		t.Fatalf("ids %q, %q", a, b)
	}
}
