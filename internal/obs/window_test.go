package obs

import (
	"sync"
	"testing"
)

func TestWindowEmpty(t *testing.T) {
	w := NewWindow(8)
	if _, ok := w.Quantile(0.5); ok {
		t.Error("empty window reported a quantile")
	}
	if w.Len() != 0 {
		t.Errorf("empty window Len = %d", w.Len())
	}
}

func TestWindowQuantiles(t *testing.T) {
	w := NewWindow(100)
	for i := 1; i <= 100; i++ {
		w.Observe(float64(i))
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.5, 51}, {0.95, 96}, {1, 100},
	} {
		got, ok := w.Quantile(tc.q)
		if !ok || got != tc.want {
			t.Errorf("Quantile(%v) = %v/%v, want %v", tc.q, got, ok, tc.want)
		}
	}
}

// TestWindowSlides checks eviction: after the window wraps, old observations
// stop influencing the quantile, which is the property hedging relies on (a
// shard that slows down must raise the hedge delay within one window).
func TestWindowSlides(t *testing.T) {
	w := NewWindow(10)
	for i := 0; i < 10; i++ {
		w.Observe(1)
	}
	if got, _ := w.Quantile(0.95); got != 1 {
		t.Fatalf("initial p95 = %v", got)
	}
	for i := 0; i < 10; i++ {
		w.Observe(100)
	}
	if got, _ := w.Quantile(0.95); got != 100 {
		t.Errorf("p95 after full slide = %v, want 100 (old regime evicted)", got)
	}
	if w.Len() != 10 {
		t.Errorf("Len = %d, want 10", w.Len())
	}
}

func TestWindowConcurrent(t *testing.T) {
	w := NewWindow(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w.Observe(float64(g*200 + i))
				w.Quantile(0.95)
			}
		}(g)
	}
	wg.Wait()
	if w.Len() != 64 {
		t.Errorf("Len = %d, want 64", w.Len())
	}
}
