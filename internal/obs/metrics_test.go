package obs

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_gauge", "help")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
	// Re-registration returns the same instrument.
	if r.Counter("test_total", "help").Value() != 5 {
		t.Fatal("re-registered counter lost its value")
	}
}

func TestCounterVecSeriesAreIndependent(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("reqs_total", "help", "status")
	v.With("ok").Add(3)
	v.With("error").Inc()
	if v.With("ok").Value() != 3 || v.With("error").Value() != 1 {
		t.Fatalf("series mixed: ok=%d error=%d", v.With("ok").Value(), v.With("error").Value())
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "help", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 2`, // 0.005 and the boundary value 0.01
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("aqp_test_queries_total", "Queries.", "endpoint", "status").With("query", "ok").Add(7)
	r.Gauge("aqp_test_inflight", "In flight.").Set(2)

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	if !strings.Contains(out, `aqp_test_queries_total{endpoint="query",status="ok"} 7`) {
		t.Errorf("missing labelled counter line:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE aqp_test_queries_total counter") {
		t.Errorf("missing TYPE line:\n%s", out)
	}
	// Every non-comment line parses as "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Fatalf("non-numeric sample value in %q", line)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "help", "q").With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `q="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped:\n%s", sb.String())
	}
}

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("conc_total", "help", "worker")
	h := r.Histogram("conc_seconds", "help", nil)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := v.With(strconv.Itoa(w % 2))
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.001)
			}
		}(w)
	}
	wg.Wait()
	if total := v.With("0").Value() + v.With("1").Value(); total != workers*per {
		t.Fatalf("lost increments: %d", total)
	}
	if h.Count() != workers*per {
		t.Fatalf("lost observations: %d", h.Count())
	}
}
