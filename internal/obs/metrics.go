package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use; an increment is a single atomic add.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative deltas are a programming error on a counter; callers
// pass unsigned magnitudes.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (in-flight requests, current
// sample generation). Stored as float64 bits so durations in seconds and
// integer counts share one type.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add applies a delta (CAS loop; contention on a gauge is a few requests
// deep at most).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed upper-bound buckets, with a
// running sum and count — the Prometheus histogram model, so latency
// quantiles can be derived server-side.
type Histogram struct {
	bounds []float64       // sorted upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the overflow bucket
	sum    Gauge           // reused as an atomic float accumulator
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: the "le" bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// DefBuckets are latency buckets in seconds, spanning sub-millisecond scans
// to the multi-second queries the slow log exists for.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metric kinds for exposition.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// series is one labelled instance of a family.
type series struct {
	labelValues []string
	metric      any // *Counter, *Gauge or *Histogram
}

// family is one named metric with a fixed label schema and any number of
// labelled series. Series creation is the slow path (mutex); increments on
// existing series go through a lock-free sync.Map read.
type family struct {
	name       string
	help       string
	kind       string
	labelNames []string
	buckets    []float64 // histograms only

	mu     sync.Mutex
	series sync.Map // canonical label-value key -> *series
}

func (f *family) get(values []string) *series {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %s expects %d label values, got %d", f.name, len(f.labelNames), len(values)))
	}
	key := strings.Join(values, "\xff")
	if s, ok := f.series.Load(key); ok {
		return s.(*series)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series.Load(key); ok {
		return s.(*series)
	}
	s := &series{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		s.metric = &Counter{}
	case kindGauge:
		s.metric = &Gauge{}
	case kindHistogram:
		s.metric = newHistogram(f.buckets)
	}
	f.series.Store(key, s)
	return s
}

// CounterVec is a counter family with labels; With resolves one series.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on first
// use. Hot callers may cache the handle.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.get(labelValues).metric.(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.get(labelValues).metric.(*Gauge)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.get(labelValues).metric.(*Histogram)
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Registration is idempotent: asking for an existing
// name returns the existing family (the kind and label schema must match,
// enforced by panic — a silent mismatch would corrupt the exposition).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry. Most code uses Default().
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(name, help, kind string, buckets []float64, labelNames ...string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labelNames) != len(labelNames) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different schema", name))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, buckets: buckets,
		labelNames: append([]string(nil), labelNames...)}
	r.families[name] = f
	return f
}

// Counter registers (or returns) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil).get(nil).metric.(*Counter)
}

// CounterVec registers (or returns) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, nil, labelNames...)}
}

// Gauge registers (or returns) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil).get(nil).metric.(*Gauge)
}

// GaugeVec registers (or returns) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, nil, labelNames...)}
}

// Histogram registers (or returns) an unlabelled histogram. A nil buckets
// slice means DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.register(name, help, kindHistogram, buckets).get(nil).metric.(*Histogram)
}

// HistogramVec registers (or returns) a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{r.register(name, help, kindHistogram, buckets, labelNames...)}
}

// WritePrometheus renders every family in the text exposition format
// (version 0.0.4), families and series in deterministic sorted order so
// scrapes diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make(map[string]*family, len(r.families))
	for n, f := range r.families {
		names = append(names, n)
		fams[n] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	var sb strings.Builder
	for _, n := range names {
		writeFamily(&sb, fams[n])
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func writeFamily(sb *strings.Builder, f *family) {
	type row struct {
		key string
		s   *series
	}
	var rows []row
	f.series.Range(func(k, v any) bool {
		rows = append(rows, row{k.(string), v.(*series)})
		return true
	})
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })

	fmt.Fprintf(sb, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(sb, "# TYPE %s %s\n", f.name, f.kind)
	for _, rw := range rows {
		switch m := rw.s.metric.(type) {
		case *Counter:
			fmt.Fprintf(sb, "%s%s %d\n", f.name, labelString(f.labelNames, rw.s.labelValues, "", ""), m.Value())
		case *Gauge:
			fmt.Fprintf(sb, "%s%s %s\n", f.name, labelString(f.labelNames, rw.s.labelValues, "", ""), formatFloat(m.Value()))
		case *Histogram:
			var cum uint64
			for i, bound := range m.bounds {
				cum += m.counts[i].Load()
				fmt.Fprintf(sb, "%s_bucket%s %d\n", f.name,
					labelString(f.labelNames, rw.s.labelValues, "le", formatFloat(bound)), cum)
			}
			cum += m.counts[len(m.bounds)].Load()
			fmt.Fprintf(sb, "%s_bucket%s %d\n", f.name,
				labelString(f.labelNames, rw.s.labelValues, "le", "+Inf"), cum)
			fmt.Fprintf(sb, "%s_sum%s %s\n", f.name,
				labelString(f.labelNames, rw.s.labelValues, "", ""), formatFloat(m.Sum()))
			fmt.Fprintf(sb, "%s_count%s %d\n", f.name,
				labelString(f.labelNames, rw.s.labelValues, "", ""), m.Count())
		}
	}
}

// labelString renders `{a="x",b="y"}` (plus an optional extra pair, used for
// histogram "le"), or "" when there are no labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraName)
		sb.WriteString(`="`)
		sb.WriteString(extraValue)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry in the Prometheus text format — mount it at
// GET /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
