package stats

import (
	"math"
	"testing"
	"testing/quick"

	"dynsample/internal/randx"
)

func TestMoments(t *testing.T) {
	var m Moments
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.N() != 8 {
		t.Fatalf("N = %d", m.N())
	}
	if math.Abs(m.Mean()-5) > 1e-12 {
		t.Errorf("mean = %g, want 5", m.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(m.Variance()-32.0/7) > 1e-12 {
		t.Errorf("variance = %g, want %g", m.Variance(), 32.0/7)
	}
	if math.Abs(m.StdDev()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("stddev = %g", m.StdDev())
	}
}

func TestMomentsEmpty(t *testing.T) {
	var m Moments
	if m.Mean() != 0 || m.Variance() != 0 {
		t.Error("empty moments not zero")
	}
	m.Add(3)
	if m.Variance() != 0 {
		t.Error("single observation variance not zero")
	}
}

func TestVarianceFromSumsMatchesMoments(t *testing.T) {
	f := func(seed int64) bool {
		rng := randx.New(seed)
		var m Moments
		var n int64
		var sum, sumSq float64
		for i := 0; i < 50; i++ {
			x := rng.NormFloat64()*3 + 1
			m.Add(x)
			n++
			sum += x
			sumSq += x * x
		}
		return math.Abs(m.Variance()-VarianceFromSums(n, sum, sumSq)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestVarianceFromSumsEdges(t *testing.T) {
	if v := VarianceFromSums(1, 5, 25); v != 0 {
		t.Errorf("n=1 variance = %g", v)
	}
	// Constant data: tiny negative drift must clamp to 0.
	if v := VarianceFromSums(3, 3, 3.0000000000000004); v < 0 {
		t.Errorf("variance went negative: %g", v)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, z float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.95, 1.644854},
		{0.995, 2.575829},
		{0.841344746, 1.0},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.z) > 1e-4 {
			t.Errorf("NormalQuantile(%g) = %g, want %g", c.p, got, c.z)
		}
	}
}

func TestNormalQuantileSymmetry(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 0.98)/2 + 0.005 // p in (0.005, 0.495]
		return math.Abs(NormalQuantile(p)+NormalQuantile(1-p)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileOutOfRange(t *testing.T) {
	for _, p := range []float64{0, 1, -0.1, 1.1} {
		if !math.IsNaN(NormalQuantile(p)) {
			t.Errorf("NormalQuantile(%g) should be NaN", p)
		}
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Lo: 2, Hi: 6, Level: 0.95}
	if iv.Width() != 4 {
		t.Errorf("width = %g", iv.Width())
	}
	if !iv.Contains(2) || !iv.Contains(6) || iv.Contains(6.1) {
		t.Error("Contains wrong")
	}
	ex := Exact(7)
	if ex.Lo != 7 || ex.Hi != 7 || ex.Level != 1 {
		t.Errorf("Exact = %+v", ex)
	}
}

func TestCountCICoverage(t *testing.T) {
	// Empirical coverage: sample 1000-of-100000 uniformly; the 95% CI for a
	// group of true size 5000 should contain 5000 about 95% of the time.
	const (
		N      = 100000
		n      = 1000
		trueK  = 5000
		trials = 2000
	)
	rng := randx.New(42)
	w := float64(N) / float64(n)
	covered := 0
	for tr := 0; tr < trials; tr++ {
		k := int64(0)
		for i := 0; i < n; i++ {
			if rng.Float64() < float64(trueK)/N {
				k++
			}
		}
		if CountCI(k, n, w, 0.95).Contains(trueK) {
			covered++
		}
	}
	cov := float64(covered) / trials
	if cov < 0.92 || cov > 0.99 {
		t.Errorf("empirical coverage %.3f, want ~0.95", cov)
	}
}

func TestCountCIEdges(t *testing.T) {
	if iv := CountCI(0, 0, 10, 0.95); iv.Lo != 0 || iv.Hi != 0 {
		t.Errorf("empty-sample CI = %+v", iv)
	}
	iv := CountCI(0, 100, 10, 0.95)
	if iv.Lo != 0 {
		t.Errorf("k=0 CI lower bound %g, want 0", iv.Lo)
	}
	if iv.Hi <= 0 {
		t.Errorf("k=0 CI upper bound %g, want > 0", iv.Hi)
	}
}

func TestSumCICoverage(t *testing.T) {
	// Group with measure ~ 100 + noise; 500 of 100000 rows in the group.
	const (
		N      = 100000
		n      = 2000
		trials = 1500
	)
	rng := randx.New(7)
	pGroup := 0.05
	trueSum := float64(N) * pGroup * 100.0
	w := float64(N) / float64(n)
	covered := 0
	for tr := 0; tr < trials; tr++ {
		var k int64
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			if rng.Float64() < pGroup {
				x := 100 + rng.NormFloat64()*20
				k++
				sum += x
				sumSq += x * x
			}
		}
		if SumCI(k, n, sum, sumSq, w, 0.95).Contains(trueSum) {
			covered++
		}
	}
	cov := float64(covered) / trials
	if cov < 0.91 || cov > 0.99 {
		t.Errorf("empirical coverage %.3f, want ~0.95", cov)
	}
}

func TestSumCIEdges(t *testing.T) {
	if iv := SumCI(0, 100, 0, 0, 10, 0.95); iv.Lo != 0 || iv.Hi != 0 {
		t.Errorf("k=0 CI = %+v", iv)
	}
	if iv := SumCI(0, 0, 0, 0, 10, 0.95); iv.Width() != 0 {
		t.Errorf("n=0 CI = %+v", iv)
	}
}

func TestCountCIWidthShrinksWithSampleSize(t *testing.T) {
	wide := CountCI(10, 100, 100, 0.95)
	narrow := CountCI(1000, 10000, 1, 0.95)
	// Relative widths: both estimate ~10% groups; larger sample → tighter.
	relWide := wide.Width() / (100 * 100 * 0.1)
	relNarrow := narrow.Width() / (10000 * 0.1)
	if relNarrow >= relWide {
		t.Errorf("CI did not shrink: %g vs %g", relNarrow, relWide)
	}
}
