// Package stats provides the statistical machinery for approximate answers:
// running moments, normal quantiles, and the confidence intervals attached to
// estimated groups (§4.2.2: "we also compute confidence intervals ... using
// standard statistical methods").
package stats

import "math"

// Moments accumulates count, mean and variance in one pass (Welford).
type Moments struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (m *Moments) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of observations.
func (m *Moments) N() int64 { return m.n }

// Mean returns the sample mean (0 when empty).
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// VarianceFromSums computes the unbiased sample variance from n, sum(x) and
// sum(x^2), as accumulated by the query executor.
func VarianceFromSums(n int64, sum, sumSq float64) float64 {
	if n < 2 {
		return 0
	}
	nf := float64(n)
	v := (sumSq - sum*sum/nf) / (nf - 1)
	if v < 0 {
		return 0 // float drift on near-constant data
	}
	return v
}

// NormalQuantile returns z such that P(Z <= z) = p for standard normal Z,
// using the Beasley-Springer-Moro rational approximation (accurate to ~1e-9
// over (0,1)).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	// Coefficients for the central region.
	a := [...]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [...]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [...]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [...]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}

	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > pHigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// Interval is a two-sided confidence interval around an estimate.
type Interval struct {
	Lo, Hi float64
	// Level is the nominal coverage, e.g. 0.95.
	Level float64
}

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Exact returns a degenerate interval at x, used for groups answered from
// small group tables.
func Exact(x float64) Interval { return Interval{Lo: x, Hi: x, Level: 1} }

// CountCI returns a confidence interval for a scaled COUNT estimate.
//
// The estimator is N̂_g = w * k where k rows of an n-row uniform sample (each
// representing w base rows) fell into the group. It uses the Agresti-Coull
// adjusted-Wald interval for the binomial proportion k/n — which the paper
// cites ([5]) as preferable to the exact interval — scaled to base-table
// units by w*n.
func CountCI(k, n int64, w float64, level float64) Interval {
	if n == 0 {
		return Interval{Lo: 0, Hi: 0, Level: level}
	}
	z := NormalQuantile(0.5 + level/2)
	z2 := z * z
	nAdj := float64(n) + z2
	pAdj := (float64(k) + z2/2) / nAdj
	half := z * math.Sqrt(pAdj*(1-pAdj)/nAdj)
	lo := (pAdj - half) * w * float64(n)
	hi := (pAdj + half) * w * float64(n)
	if lo < 0 {
		lo = 0
	}
	return Interval{Lo: lo, Hi: hi, Level: level}
}

// SumCI returns a confidence interval for a scaled SUM estimate.
//
// The estimator is Ŝ_g = w * sum where a group's k sample rows carry measure
// values with the given sum and sum of squares, drawn from an n-row uniform
// sample of scale factor w. The variance of the Horvitz-Thompson style
// estimator is approximated treating per-row contributions y_i (= x_i inside
// the group, 0 outside) as i.i.d. across the n sample rows:
//
//	Var(Ŝ) ≈ w² · n · s²_y,  s²_y the sample variance of y over all n rows.
func SumCI(k, n int64, sum, sumSq, w float64, level float64) Interval {
	if n == 0 || k == 0 {
		return Interval{Lo: 0, Hi: 0, Level: level}
	}
	nf := float64(n)
	// Moments of y over all n rows: zeros outside the group.
	meanY := sum / nf
	varY := sumSq/nf - meanY*meanY
	if varY < 0 {
		varY = 0
	}
	sd := w * math.Sqrt(nf*varY)
	z := NormalQuantile(0.5 + level/2)
	est := w * sum
	return Interval{Lo: est - z*sd, Hi: est + z*sd, Level: level}
}
