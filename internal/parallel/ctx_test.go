package parallel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// TestForEachCtxMatchesForEachErr: with a live context, ForEachCtx runs every
// task and picks the same deterministic (lowest-index) error as ForEachErr.
func TestForEachCtxMatchesForEachErr(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		var ran atomic.Int64
		err := ForEachCtx(context.Background(), workers, 20, func(i int) error {
			ran.Add(1)
			if i == 7 || i == 13 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if ran.Load() != 20 {
			t.Fatalf("workers=%d: ran %d tasks, want 20", workers, ran.Load())
		}
		if err == nil || err.Error() != "task 7 failed" {
			t.Fatalf("workers=%d: err = %v, want lowest-index task error", workers, err)
		}
	}
}

// TestForEachCtxCancelStopsHandout: once a task cancels the context, no new
// task starts and the call reports ctx.Err().
func TestForEachCtxCancelStopsHandout(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	err := ForEachCtx(ctx, 1, 100, func(i int) error {
		ran.Add(1)
		if i == 4 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 5 {
		t.Fatalf("ran %d tasks after cancel at index 4 with 1 worker, want 5", got)
	}
}

// TestForEachCtxPreCancelled: a dead context runs nothing.
func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := ForEachCtx(ctx, workers, 10, func(i int) error { ran.Add(1); return nil })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: ran %d tasks on a dead context", workers, ran.Load())
		}
	}
}

// TestForEachCtxCompletedIgnoresLateCancel: if every task finished, a cancel
// racing the return must not mask task results.
func TestForEachCtxCompletedIgnoresLateCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := ForEachCtx(ctx, 2, 5, func(i int) error {
		if i == 4 {
			defer cancel() // cancelled only as the final task returns
		}
		return nil
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

// TestForEachCtxContainsPanic: a panicking task becomes that task's error
// instead of crashing the process — load-bearing for the HTTP server, whose
// scan workers run outside any net/http recover.
func TestForEachCtxContainsPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEachCtx(context.Background(), workers, 8, func(i int) error {
			if i == 2 {
				panic("kaboom")
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "task 2 panicked: kaboom") {
			t.Fatalf("workers=%d: err = %v, want contained panic from task 2", workers, err)
		}
	}
}
