package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{0, 10, 1},   // 0 means serial
		{-3, 10, 1},  // negative means serial
		{4, 10, 4},   // budget below n passes through
		{16, 10, 10}, // capped at n
		{4, 0, 4},    // n == 0: nothing to cap against
		{1, 1, 1},
	}
	for _, c := range cases {
		if got := Normalize(c.workers, c.n); got != c.want {
			t.Errorf("Normalize(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 1000
		hits := make([]atomic.Int64, n)
		ForEach(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	called := false
	ForEach(8, 0, func(int) { called = true })
	if called {
		t.Fatal("fn called with n=0")
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	var completed atomic.Int64
	err := ForEachErr(8, 100, func(i int) error {
		completed.Add(1)
		switch i {
		case 7:
			return errLow
		case 93:
			return errHigh
		}
		return nil
	})
	if err != errLow {
		t.Fatalf("got %v, want the lowest-index error", err)
	}
	// All tasks run to completion even after a failure.
	if got := completed.Load(); got != 100 {
		t.Fatalf("%d tasks completed, want 100", got)
	}
	if err := ForEachErr(8, 100, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestShards(t *testing.T) {
	if got := Shards(0, 16); got != nil {
		t.Fatalf("Shards(0, 16) = %v, want nil", got)
	}
	if got := Shards(10, 0); len(got) != 1 || got[0] != (Shard{0, 10}) {
		t.Fatalf("Shards(10, 0) = %v, want one full-range shard", got)
	}
	// Boundaries depend only on n and size; cover exact multiples and ragged tails.
	for _, c := range []struct{ n, size, want int }{
		{10, 3, 4}, {12, 3, 4}, {1, 16384, 1}, {16384, 16384, 1}, {16385, 16384, 2},
	} {
		shards := Shards(c.n, c.size)
		if len(shards) != c.want {
			t.Fatalf("Shards(%d, %d): %d shards, want %d", c.n, c.size, len(shards), c.want)
		}
		prev := 0
		for _, s := range shards {
			if s.Lo != prev || s.Hi <= s.Lo || s.Hi-s.Lo > c.size {
				t.Fatalf("Shards(%d, %d): bad shard %+v after %d", c.n, c.size, s, prev)
			}
			prev = s.Hi
		}
		if prev != c.n {
			t.Fatalf("Shards(%d, %d): covered %d rows", c.n, c.size, prev)
		}
	}
}
