// Package parallel provides the small worker-pool primitives shared by the
// engine's partitioned scans, the middleware's rewritten-query fan-out and
// the pre-processing phase.
//
// The package deliberately contains no clever scheduling: callers decide the
// unit of work (a row-range shard, a rewrite step, a column counter) and
// parallel runs those units on a bounded number of goroutines. Every helper
// is deterministic in its outputs — results are always collected positionally
// (slot i holds task i's output), so callers that combine partial results in
// index order get answers independent of the worker count and of goroutine
// scheduling.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the default worker budget: the number of logical
// CPUs. This is what the -workers flags of aqpd and aqpcli default to.
func DefaultWorkers() int { return runtime.NumCPU() }

// Normalize clamps a worker budget for n units of work. Non-positive budgets
// mean serial (1 worker) — throughout this repository, 0 workers selects the
// legacy serial path, and callers that want hardware parallelism pass
// DefaultWorkers explicitly (as the -workers flags do by default). The result
// never exceeds n: spawning more goroutines than units is pure overhead.
func Normalize(workers, n int) int {
	if workers < 1 {
		workers = 1
	}
	if workers > n && n > 0 {
		workers = n
	}
	return workers
}

// ForEach runs fn(0), ..., fn(n-1) on up to workers goroutines and returns
// when all calls have finished. Work is handed out by an atomic counter, so
// which goroutine runs which index is nondeterministic — fn must write its
// output to a caller-provided slot indexed by i (never to shared state) for
// the overall computation to stay deterministic. With workers <= 1 (or n <= 1)
// everything runs inline on the calling goroutine, with no synchronisation.
func ForEach(workers, n int, fn func(i int)) {
	workers = Normalize(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachErr is ForEach for fallible tasks. All tasks run to completion even
// after a failure; the returned error is the one from the lowest task index
// (a deterministic choice, independent of scheduling), or nil.
func ForEachErr(workers, n int, fn func(i int) error) error {
	errs := make([]error, n)
	ForEach(workers, n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEachCtx is the cancellable form of ForEachErr: it runs fn(0), ...,
// fn(n-1) on up to workers goroutines, but stops handing out new tasks once
// ctx is done. Tasks already started always run to completion — cancellation
// is observed between tasks, never inside one — so a caller whose context
// stays live gets exactly the ForEachErr behaviour and bit-identical outputs.
//
// The returned error is ctx.Err() if the context was cancelled before all n
// tasks completed; otherwise the error from the lowest task index (the same
// deterministic choice as ForEachErr), or nil. A panicking task does not
// crash the process: the panic is recovered on the worker goroutine and
// reported as that task's error.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	errs := make([]error, n)
	var started atomic.Int64
	run := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				errs[i] = fmt.Errorf("parallel: task %d panicked: %v", i, v)
			}
		}()
		errs[i] = fn(i)
	}

	workers = Normalize(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			started.Add(1)
			run(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					started.Add(1)
					run(i)
				}
			}()
		}
		wg.Wait()
	}

	if err := ctx.Err(); err != nil && int(started.Load()) < n {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Shard is a half-open row range [Lo, Hi).
type Shard struct {
	Lo, Hi int
}

// Shards splits n rows into ranges of at most size rows each. The boundaries
// depend only on n and size — never on the worker count — which is what makes
// sharded scans bit-identical across worker counts: per-shard partial results
// are always the same, and callers merge them in shard order.
func Shards(n, size int) []Shard {
	if n <= 0 {
		return nil
	}
	if size <= 0 {
		size = n
	}
	out := make([]Shard, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Shard{Lo: lo, Hi: hi})
	}
	return out
}
