package server

import (
	"context"
	"encoding/json"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dynsample/internal/core"
	"dynsample/internal/faults"
)

const testSQL = "SELECT region, COUNT(*) FROM T GROUP BY region"

// ms builds the pointer form timeout_ms takes in QueryRequest literals.
func ms(v int64) *int64 { return &v }

func robustServer(t *testing.T, sgCfg core.SmallGroupConfig, cfg Config) *httptest.Server {
	t.Helper()
	sys := testSystem(t, sgCfg)
	srv := httptest.NewServer(New(sys, cfg).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func decodeErr(t *testing.T, body []byte) ErrorResponse {
	t.Helper()
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("error body %q is not JSON: %v", body, err)
	}
	return er
}

func TestMalformedBodyRejected(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestBadRequestErrorPaths(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		name string
		req  QueryRequest
		want string // substring of the error message
	}{
		{"empty sql", QueryRequest{SQL: "   "}, "empty sql"},
		{"unknown column", QueryRequest{SQL: "SELECT nope, COUNT(*) FROM T GROUP BY nope"}, "nope"},
		{"negative timeout", QueryRequest{SQL: testSQL, TimeoutMS: ms(-5)}, "timeout_ms"},
	}
	for _, tc := range cases {
		for _, path := range []string{"/query", "/exact"} {
			resp, body := post(t, srv, path, tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("%s %s: status %d, want 400 (%s)", tc.name, path, resp.StatusCode, body)
			}
			if er := decodeErr(t, body); !strings.Contains(er.Error.Message, tc.want) {
				t.Errorf("%s %s: error %q does not mention %q", tc.name, path, er.Error.Message, tc.want)
			}
		}
	}
}

// TestDeadlineExceededReturns504: a fault-injected slow shard makes the scan
// stall far beyond the request's timeout_ms; the server must answer 504 with
// the structured deadline_exceeded code long before the stalled scan would
// have finished.
func TestDeadlineExceededReturns504(t *testing.T) {
	t.Cleanup(faults.Reset)
	srv := robustServer(t, core.SmallGroupConfig{Workers: 4}, Config{})
	const stall = 30 * time.Second
	faults.Set(faults.PointScanShard, faults.SleepHook(stall))

	start := time.Now()
	resp, body := post(t, srv, "/query", QueryRequest{SQL: testSQL, TimeoutMS: ms(50)})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, body)
	}
	if er := decodeErr(t, body); er.Error.Code != CodeDeadlineExceeded {
		t.Errorf("code %q, want %q", er.Error.Code, CodeDeadlineExceeded)
	}
	if elapsed >= stall {
		t.Fatalf("504 took %v — deadline did not abort the stalled scan", elapsed)
	}

	// Same stalled backend on /exact: the base-table scan observes the
	// deadline at shard boundaries too.
	resp, body = post(t, srv, "/exact", QueryRequest{SQL: testSQL, TimeoutMS: ms(50)})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("/exact status %d, want 504 (%s)", resp.StatusCode, body)
	}
}

// TestServerDefaultTimeout: Config.DefaultTimeout applies when the request
// carries no timeout_ms.
func TestServerDefaultTimeout(t *testing.T) {
	t.Cleanup(faults.Reset)
	srv := robustServer(t, core.SmallGroupConfig{Workers: 4}, Config{DefaultTimeout: 50 * time.Millisecond})
	faults.Set(faults.PointScanShard, faults.SleepHook(30*time.Second))
	start := time.Now()
	resp, body := post(t, srv, "/query", QueryRequest{SQL: testSQL})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("default timeout took %v to fire", elapsed)
	}
}

// TestOverloadShed503: with -max-inflight 1 and one query stuck in its scan,
// a second concurrent query is shed immediately with 503 + Retry-After; once
// the first completes, capacity frees up again.
func TestOverloadShed503(t *testing.T) {
	t.Cleanup(faults.Reset)
	srv := robustServer(t, core.SmallGroupConfig{Workers: 4}, Config{MaxInflight: 1})
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	faults.Set(faults.PointScanShard, func(ctx context.Context, i int) {
		once.Do(func() { close(entered) })
		faults.BlockHook(release)(ctx, i)
	})

	firstDone := make(chan int, 1)
	go func() {
		resp, _ := post(t, srv, "/query", QueryRequest{SQL: testSQL})
		firstDone <- resp.StatusCode
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("first query never reached its scan")
	}

	resp, body := post(t, srv, "/query", QueryRequest{SQL: testSQL})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second query: status %d, want 503 (%s)", resp.StatusCode, body)
	}
	// The base hint is 1s; jitter spreads it over [1, 2] (see retryAfterSecs).
	if ra := resp.Header.Get("Retry-After"); ra != "1" && ra != "2" {
		t.Errorf("Retry-After = %q, want \"1\" or \"2\"", ra)
	}
	if er := decodeErr(t, body); er.Error.Code != CodeOverloaded {
		t.Errorf("code %q, want %q", er.Error.Code, CodeOverloaded)
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("first query: status %d, want 200 after release", code)
	}
	// Capacity is back: a fresh query succeeds.
	faults.Reset()
	if resp, body := post(t, srv, "/query", QueryRequest{SQL: testSQL}); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release query: status %d (%s)", resp.StatusCode, body)
	}
}

// TestHandlerPanicRecoveredTo500: a panic on the request goroutine becomes a
// 500 and the process keeps serving.
func TestHandlerPanicRecoveredTo500(t *testing.T) {
	t.Cleanup(faults.Reset)
	srv := testServer(t)
	faults.Set(faults.PointHandler, faults.PanicHook("handler exploded"))
	resp, body := post(t, srv, "/query", QueryRequest{SQL: testSQL})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 (%s)", resp.StatusCode, body)
	}
	if er := decodeErr(t, body); er.Error.Code != CodeInternal || !strings.Contains(er.Error.Message, "handler exploded") {
		t.Errorf("error = %+v, want internal code with panic detail", er)
	}
	// The process survived: the next request succeeds.
	faults.Reset()
	if resp, body := post(t, srv, "/query", QueryRequest{SQL: testSQL}); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic query: status %d (%s)", resp.StatusCode, body)
	}
}

// TestQueryDegradesUnderDeadline: a one-row-per-second throughput estimate
// makes the full rewrite look unaffordable inside the (generous) deadline, so
// the server answers from the overall sample and flags it.
func TestQueryDegradesUnderDeadline(t *testing.T) {
	srv := robustServer(t, core.SmallGroupConfig{Workers: 4, ScanRowsPerSecond: 1}, Config{})

	// Without a deadline: full plan, not degraded.
	resp, body := post(t, srv, "/query", QueryRequest{SQL: testSQL, Explain: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, body)
	}
	var full QueryResponse
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatal(err)
	}
	if full.Degraded {
		t.Fatal("degraded without a deadline")
	}
	if !strings.Contains(full.Rewrite, "UNION ALL") {
		t.Fatalf("full rewrite has a single step:\n%s", full.Rewrite)
	}

	// With a deadline: overall sample only, degraded flag set, still 200.
	resp, body = post(t, srv, "/query", QueryRequest{SQL: testSQL, Explain: true, TimeoutMS: ms(30000)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, body)
	}
	var deg QueryResponse
	if err := json.Unmarshal(body, &deg); err != nil {
		t.Fatal(err)
	}
	if !deg.Degraded {
		t.Fatal("degraded flag not set")
	}
	if strings.Contains(deg.Rewrite, "UNION ALL") {
		t.Fatalf("degraded rewrite still multi-step:\n%s", deg.Rewrite)
	}
	if len(deg.Groups) == 0 {
		t.Fatal("degraded answer has no groups")
	}
	if deg.RowsRead >= full.RowsRead {
		t.Fatalf("degraded read %d rows, full plan %d", deg.RowsRead, full.RowsRead)
	}
	for _, g := range deg.Groups {
		if g.Exact {
			t.Fatalf("degraded group %v marked exact", g.Key)
		}
	}
}

// TestExactParityWithQuery: /exact reports RowsRead from the engine result
// (the base table size for an unfiltered scan) and measures elapsed around
// engine execution, exactly like /query.
func TestExactParityWithQuery(t *testing.T) {
	srv := testServer(t)
	resp, body := post(t, srv, "/exact", QueryRequest{SQL: testSQL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.RowsRead != 20000 {
		t.Errorf("RowsRead = %d, want 20000 (base table scan)", qr.RowsRead)
	}
	if qr.ElapsedUS <= 0 {
		t.Errorf("ElapsedUS = %d, want > 0", qr.ElapsedUS)
	}
}

// TestWriteJSONEncodeFailureIsClean500: an unencodable value must produce a
// pure 500 error body, never a half-written 200 payload.
func TestWriteJSONEncodeFailureIsClean500(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, map[string]float64{"x": math.NaN()}) // NaN is not valid JSON
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if er := decodeErr(t, rec.Body.Bytes()); er.Error.Code != CodeInternal {
		t.Fatalf("body %q is not a structured internal error", rec.Body.String())
	}
}

// TestGracefulDrain: cancelling the serve context (what SIGINT/SIGTERM does
// in aqpd) must let the in-flight request finish with a 200 before Serve
// returns, and refuse new connections afterwards.
func TestGracefulDrain(t *testing.T) {
	t.Cleanup(faults.Reset)
	sys := testSystem(t, core.SmallGroupConfig{Workers: 4})
	srv := &http.Server{Handler: New(sys, Config{}).Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- Serve(ctx, srv, ln, 30*time.Second) }()

	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	faults.Set(faults.PointScanShard, func(ctx context.Context, i int) {
		once.Do(func() { close(entered) })
		faults.BlockHook(release)(ctx, i)
	})

	url := "http://" + ln.Addr().String()
	status := make(chan int, 1)
	go func() {
		resp, err := http.Post(url+"/query", "application/json",
			strings.NewReader(`{"sql":"`+testSQL+`"}`))
		if err != nil {
			status <- -1
			return
		}
		resp.Body.Close()
		status <- resp.StatusCode
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("request never reached its scan")
	}

	cancel() // the SIGTERM moment
	select {
	case err := <-served:
		t.Fatalf("Serve returned %v with a request still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	if code := <-status; code != http.StatusOK {
		t.Fatalf("in-flight request: status %d, want 200 after drain", code)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve = %v, want nil after clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after the drain completed")
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}
