package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"dynsample/internal/catalog"
	"dynsample/internal/core"
	"dynsample/internal/obs"
)

// Rebuild instrumentation: rebuilds are rare and expensive, so the metrics
// focus on outcome and cost; aqp_sample_generation lets dashboards confirm
// every replica converged on the same generation after a rollout.
var (
	obsRebuilds = obs.Default().CounterVec("aqp_rebuild_total",
		"Sample rebuilds attempted, by status (ok, error, conflict).", "status")
	obsRebuildDuration = obs.Default().Histogram("aqp_rebuild_duration_seconds",
		"Pre-processing wall time of successful rebuilds.",
		[]float64{0.01, 0.05, 0.1, 0.5, 1, 5, 15, 60, 300})
	obsGeneration = obs.Default().Gauge("aqp_sample_generation",
		"Sample generation currently serving queries.")
)

// Zero-downtime rebuild and health reporting. The sample family a server
// answers from is not frozen at startup: POST /admin/rebuild (or the
// periodic AutoRebuild loop) re-runs the strategy's pre-processing phase
// against the base data while queries keep being answered from the current
// generation, then swaps the new state in atomically (core.SwapPrepared)
// and persists it as the next catalog generation. In-flight queries finish
// on the generation they started with; no request ever observes a torn or
// missing sample set.

// RebuildConfig enables zero-downtime sample rebuilds.
type RebuildConfig struct {
	// Strategy is re-run against the base database on every rebuild. Nil
	// disables /admin/rebuild and AutoRebuild.
	Strategy core.Strategy
	// Catalog, when non-nil, persists each rebuilt generation as a
	// crash-safe snapshot (and is the authority for generation numbers).
	Catalog *catalog.Catalog
	// Workers is applied to the rebuilt state when it is worker-configurable
	// (mirrors what the CLIs do after LoadSmallGroup).
	Workers int
}

func ptrOf(s string) *string { return &s }

// ErrRebuildInProgress is returned when a rebuild is requested while
// another one is still running; rebuilds are single-flight.
var ErrRebuildInProgress = errors.New("server: rebuild already in progress")

// CodeRebuildInProgress is the ErrorDetail.Code for a rejected
// concurrent rebuild.
const CodeRebuildInProgress = "rebuild_in_progress"

// healthState is the mutable serving state surfaced by /healthz and
// /readyz. All fields are atomics: handlers read them while a rebuild
// updates them.
type healthState struct {
	generation  atomic.Uint64
	lastRebuild atomic.Int64 // unix nanos of the last successful build/load; 0 = unknown
	rebuilding  atomic.Bool
	source      atomic.Pointer[string] // "preprocess" | "snapshot" | "rebuild"
	lastErr     atomic.Pointer[string] // last rebuild failure, cleared on success
}

// MarkGeneration records which sample generation the server is serving and
// where it came from ("preprocess" for a fresh build, "snapshot" for a
// catalog restore). The CLIs call it once at startup so /healthz is
// accurate before any rebuild has happened.
func (s *Server) MarkGeneration(gen uint64, source string) {
	s.health.generation.Store(gen)
	s.health.source.Store(&source)
	s.health.lastRebuild.Store(time.Now().UnixNano())
	obsGeneration.Set(float64(gen))
}

// RebuildStatus reports the outcome of one rebuild.
type RebuildStatus struct {
	// Generation is the new serving generation.
	Generation uint64 `json:"generation"`
	// ElapsedMS is the pre-processing wall time in milliseconds.
	ElapsedMS int64 `json:"elapsedMillis"`
	// Persisted is true when the generation was saved to the catalog.
	Persisted bool `json:"persisted"`
	// PersistError carries a catalog save failure. The swap still happened —
	// the server is answering from the new samples — but the generation is
	// not durable (or, for a manifest-only failure, durable with stale
	// advisory metadata).
	PersistError string `json:"persistError,omitempty"`
	// WALSegmentsRemoved is how many fully-checkpointed WAL segments the
	// save garbage-collected (ingest-enabled servers only).
	WALSegmentsRemoved int `json:"walSegmentsRemoved,omitempty"`
	// WALGCError carries a non-fatal segment-deletion failure; leftover
	// segments are retried at the next checkpoint or startup.
	WALGCError string `json:"walGCError,omitempty"`
}

// Rebuild runs one zero-downtime rebuild: pre-process the base data with
// the configured strategy (queries keep being served from the current
// generation meanwhile), swap the result in atomically, and persist it to
// the catalog when one is configured. Rebuilds are single-flight; a
// concurrent call fails fast with ErrRebuildInProgress.
func (s *Server) Rebuild() (RebuildStatus, error) {
	var st RebuildStatus
	rb := s.cfg.Rebuild
	if rb.Strategy == nil {
		return st, errors.New("server: rebuild not configured")
	}
	if !s.health.rebuilding.CompareAndSwap(false, true) {
		obsRebuilds.With("conflict").Inc()
		return st, ErrRebuildInProgress
	}
	defer s.health.rebuilding.Store(false)

	// With an ingest coordinator the rebuild pins a database version and
	// batches keep landing meanwhile; without one the base data is immutable
	// and s.sys.DB() is the same thing.
	db := s.sys.DB()
	var pinnedGen uint64
	if ing := s.cfg.Ingest; ing != nil {
		var err error
		db, pinnedGen, err = ing.BeginRebuild()
		if err != nil {
			obsRebuilds.With("conflict").Inc()
			return st, fmt.Errorf("server: %w", err)
		}
	}
	start := time.Now()
	p, err := rb.Strategy.Preprocess(db)
	if err != nil {
		if s.cfg.Ingest != nil {
			s.cfg.Ingest.AbortRebuild()
		}
		msg := err.Error()
		s.health.lastErr.Store(&msg)
		obsRebuilds.With("error").Inc()
		return st, fmt.Errorf("server: rebuild preprocess: %w", err)
	}
	if wc, ok := p.(core.WorkerConfigurable); ok && rb.Workers > 0 {
		wc.SetWorkers(rb.Workers)
	}
	st.ElapsedMS = time.Since(start).Milliseconds()

	st.Generation = s.health.generation.Load() + 1
	if ing := s.cfg.Ingest; ing != nil {
		// Swap through the coordinator's handshake: it re-applies the batches
		// that landed during pre-processing (the tail) and publishes the
		// result, so the snapshot persisted below carries the full data
		// generation and replay after a restart skips exactly the covered
		// batches.
		if err := ing.CompleteRebuild(p, pinnedGen); err != nil {
			s.health.lastErr.Store(ptrOf(err.Error()))
			obsRebuilds.With("error").Inc()
			return st, fmt.Errorf("server: rebuild rebase: %w", err)
		}
		if rb.Catalog != nil {
			// SaveCheckpoint persists the rebuilt samples together with the
			// WAL position they cover, then deletes the fully-covered
			// segments — this is what bounds restart replay and WAL disk
			// usage to ingest-since-last-rebuild.
			res, err := ing.SaveCheckpoint(rb.Catalog)
			if res.Generation > 0 {
				st.Generation = res.Generation
				st.Persisted = true
			}
			if err != nil {
				st.PersistError = err.Error()
			}
			st.WALSegmentsRemoved = res.Removed
			if res.GCErr != nil {
				st.WALGCError = res.GCErr.Error()
			}
		}
	} else {
		// Persist first, then swap: if the save fails we still swap (fresh
		// samples beat stale ones) but report the durability gap.
		if rb.Catalog != nil {
			gen, err := rb.Catalog.Save(func(w io.Writer) error {
				return core.SaveSmallGroup(w, p)
			})
			if err != nil {
				st.PersistError = err.Error()
			} else {
				st.Generation = gen
				st.Persisted = true
			}
		}
		s.sys.SwapPrepared(s.strategy, p)
	}
	s.health.generation.Store(st.Generation)
	src := "rebuild"
	s.health.source.Store(&src)
	s.health.lastRebuild.Store(time.Now().UnixNano())
	s.health.lastErr.Store(nil)
	obsRebuilds.With("ok").Inc()
	obsRebuildDuration.Observe(time.Duration(st.ElapsedMS * int64(time.Millisecond)).Seconds())
	obsGeneration.Set(float64(st.Generation))
	return st, nil
}

// AutoRebuild rebuilds every interval until ctx is cancelled — the
// -rebuild-interval flag of aqpd. Failures are reported through /healthz
// (lastRebuildError) and the next tick tries again.
func (s *Server) AutoRebuild(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.Rebuild() // errors land in healthState.lastErr
		}
	}
}

func (s *Server) handleRebuild(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Rebuild.Strategy == nil {
		writeError(w, http.StatusNotImplemented, CodeUnimplemented,
			errors.New("rebuild not configured (start the server with a strategy and catalog)"))
		return
	}
	st, err := s.Rebuild()
	switch {
	case errors.Is(err, ErrRebuildInProgress):
		writeError(w, http.StatusConflict, CodeRebuildInProgress, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, CodeInternal, err)
	default:
		writeJSON(w, st)
	}
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status     string `json:"status"` // "ok" or "rebuilding"
	Strategy   string `json:"strategy"`
	Generation uint64 `json:"generation"`
	// Source is where the serving samples came from: "preprocess",
	// "snapshot" or "rebuild".
	Source string `json:"source,omitempty"`
	// LastRebuild is the RFC3339 time the serving generation was built or
	// loaded; empty if unknown.
	LastRebuild string `json:"lastRebuild,omitempty"`
	Rebuilding  bool   `json:"rebuilding"`
	// LastRebuildError is the most recent failed rebuild's error; cleared
	// by the next success.
	LastRebuildError string `json:"lastRebuildError,omitempty"`
	// Ingest reports the ingest coordinator's availability: "ok",
	// "degraded" (disk fault, ingest 503s, self-recovering) or "poisoned"
	// (restart required). Empty when ingestion is not configured.
	Ingest string `json:"ingest,omitempty"`
	// IngestDetail carries the underlying fault when Ingest is not "ok".
	IngestDetail string `json:"ingestDetail,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := HealthResponse{
		Status:     "ok",
		Strategy:   s.strategy,
		Generation: s.health.generation.Load(),
		Rebuilding: s.health.rebuilding.Load(),
	}
	if resp.Rebuilding {
		resp.Status = "rebuilding"
	}
	if src := s.health.source.Load(); src != nil {
		resp.Source = *src
	}
	if ns := s.health.lastRebuild.Load(); ns != 0 {
		resp.LastRebuild = time.Unix(0, ns).UTC().Format(time.RFC3339)
	}
	if e := s.health.lastErr.Load(); e != nil {
		resp.LastRebuildError = *e
	}
	if ing := s.cfg.Ingest; ing != nil {
		resp.Ingest, resp.IngestDetail = ing.State()
	}
	writeJSON(w, resp)
}

// ReadyResponse is the body of GET /readyz.
type ReadyResponse struct {
	Ready  bool   `json:"ready"`
	Reason string `json:"reason,omitempty"`
	// Ingest mirrors HealthResponse.Ingest. Degraded or poisoned ingest
	// does NOT flip readiness — the server still answers queries — but
	// orchestrators that route writes can read it here.
	Ingest string `json:"ingest,omitempty"`
}

// handleReadyz reports 200 once the active strategy has runtime state to
// answer from, 503 otherwise — the signal a load balancer or orchestrator
// uses to gate traffic. A rebuild does not flip readiness: the old
// generation keeps serving until the swap. Neither does degraded ingest:
// read traffic is exactly what a degraded server can still take.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if _, ok := s.sys.Prepared(s.strategy); !ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		b, _ := json.Marshal(ReadyResponse{Ready: false, Reason: fmt.Sprintf("strategy %q has no prepared state", s.strategy)})
		w.Write(append(b, '\n'))
		return
	}
	resp := ReadyResponse{Ready: true}
	if ing := s.cfg.Ingest; ing != nil {
		resp.Ingest, _ = ing.State()
	}
	writeJSON(w, resp)
}
