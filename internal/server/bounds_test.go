package server

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/randx"
)

// boundsSystem builds a fixture with a clean planner separation: four
// well-sampled common regions plus ten genuinely rare ones, so an
// error_bound of 0.10 is satisfiable by a trimmed sample plan while 0.01
// forces the exact fallback. ScanRowsPerSecond is pinned so latency
// predictions are deterministic.
func boundsSystem(t *testing.T, scanRate float64) *core.System {
	t.Helper()
	region := engine.NewColumn("region", engine.String)
	amount := engine.NewColumn("amount", engine.Float)
	fact := engine.NewTable("sales", region, amount)
	rng := randx.New(99)
	for i := 0; i < 20000; i++ {
		switch r := rng.Float64(); {
		case r < 0.40:
			region.AppendString("R0")
		case r < 0.70:
			region.AppendString("R1")
		case r < 0.90:
			region.AppendString("R2")
		case r < 0.995:
			region.AppendString("R3")
		default:
			region.AppendString("X" + string(rune('0'+rng.Intn(10))))
		}
		amount.AppendFloat(rng.Float64() * 100)
		fact.EndRow()
	}
	sys := core.NewSystem(engine.MustNewDatabase("salesdb", fact))
	err := sys.AddStrategy(core.NewSmallGroup(core.SmallGroupConfig{
		BaseRate:           0.2,
		SmallGroupFraction: 0.05,
		ScanRowsPerSecond:  scanRate,
		Workers:            4,
		Seed:               1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func boundsServer(t *testing.T, scanRate float64) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(New(boundsSystem(t, scanRate), Config{}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

const boundsSQL = "SELECT region, COUNT(*) FROM T GROUP BY region"

func decodeQuery(t *testing.T, body []byte) QueryResponse {
	t.Helper()
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("response %q is not a QueryResponse: %v", body, err)
	}
	return qr
}

// TestBoundedQueryPlanSelection is the end-to-end acceptance test for the
// planner contract: error_bound 0.10 vs 0.01 select different plans on a
// fixed dataset, and the tight request's achieved relative error — measured
// against /v1/exact, not the response's own estimate — stays within its
// returned predicted bound ×1.5.
func TestBoundedQueryPlanSelection(t *testing.T) {
	srv := boundsServer(t, 25e6)

	resp, body := post(t, srv, "/v1/query", QueryRequest{SQL: boundsSQL, ErrorBound: 0.10})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("error_bound 0.10: status %d: %s", resp.StatusCode, body)
	}
	loose := decodeQuery(t, body)

	resp, body = post(t, srv, "/v1/query", QueryRequest{SQL: boundsSQL, ErrorBound: 0.01})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("error_bound 0.01: status %d: %s", resp.StatusCode, body)
	}
	tight := decodeQuery(t, body)

	if loose.Plan == "" || tight.Plan == "" {
		t.Fatalf("bounded responses missing plan: %q vs %q", loose.Plan, tight.Plan)
	}
	if loose.Plan == tight.Plan {
		t.Fatalf("error_bound 0.10 and 0.01 selected the same plan %q", loose.Plan)
	}
	if loose.RowsRead >= tight.RowsRead {
		t.Fatalf("looser bound read more rows: %d vs %d", loose.RowsRead, tight.RowsRead)
	}

	resp, body = post(t, srv, "/v1/exact", QueryRequest{SQL: boundsSQL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/exact: status %d: %s", resp.StatusCode, body)
	}
	exact := decodeQuery(t, body)
	truth := map[string]float64{}
	for _, g := range exact.Groups {
		truth[strings.Join(g.Key, "|")] = g.Values[0]
	}

	for _, tc := range []struct {
		name string
		resp QueryResponse
	}{{"error_bound=0.01", tight}, {"error_bound=0.10", loose}} {
		if tc.resp.Predicted == nil || tc.resp.Achieved == nil {
			t.Fatalf("%s: predicted/achieved missing from response", tc.name)
		}
		var sum float64
		var n int
		for _, g := range tc.resp.Groups {
			want, ok := truth[strings.Join(g.Key, "|")]
			if !ok || want == 0 {
				continue
			}
			sum += math.Abs(g.Values[0]-want) / want
			n++
		}
		achieved := sum / float64(n)
		// The acceptance contract: realized error within the returned
		// predicted bound ×1.5 (the prediction is a confidence-level bound,
		// so the realized mean should sit well inside it).
		if limit := *tc.resp.Predicted * 1.5; achieved > limit {
			t.Fatalf("%s: achieved error vs exact %.4f exceeds predicted %.4f x1.5",
				tc.name, achieved, *tc.resp.Predicted)
		}
	}
	if *tight.Predicted != 0 || *tight.Achieved != 0 {
		t.Fatalf("0.01 bound should have escalated to an exact plan (predicted %g achieved %g)",
			*tight.Predicted, *tight.Achieved)
	}
}

// TestBoundedQueryUnsatisfiable pins an implausibly slow scan rate so no
// plan can meet a millisecond time bound together with a near-zero error
// bound; the server must answer 422 with the best achievable figures.
func TestBoundedQueryUnsatisfiable(t *testing.T) {
	srv := boundsServer(t, 1000)
	resp, body := post(t, srv, "/v1/query", QueryRequest{
		SQL: boundsSQL, ErrorBound: 1e-6, TimeBoundMS: 1,
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, body)
	}
	er := decodeErr(t, body)
	if er.Error.Code != CodeBoundUnsatisfiable {
		t.Fatalf("code %q, want %q", er.Error.Code, CodeBoundUnsatisfiable)
	}
	if er.Error.BestErrorBound == nil || er.Error.BestTimeBoundMS == nil {
		t.Fatalf("422 body missing best achievable bounds: %s", body)
	}
	// The exact plan (20000 rows at 1000 rows/s) is the only way to reach
	// error 1e-6, so the best achievable time bound is ~20s.
	if *er.Error.BestTimeBoundMS < 1000 {
		t.Fatalf("best_time_bound_ms %d implausibly small", *er.Error.BestTimeBoundMS)
	}
}

// TestBoundedQueryExplainTrace asserts every documented planner field
// appears in a serving response: plan/predicted/achieved on the envelope and
// the full candidate list in the explain trace.
func TestBoundedQueryExplainTrace(t *testing.T) {
	srv := boundsServer(t, 25e6)
	resp, body := post(t, srv, "/v1/query", QueryRequest{
		SQL: boundsSQL, ErrorBound: 0.10, Confidence: 0.99, Explain: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	for _, field := range []string{
		`"plan"`, `"predicted"`, `"achieved"`, `"planner"`, `"candidates"`,
		`"chosen"`, `"predicted_error"`, `"achieved_error"`, `"predicted_latency_micros"`,
		`"feasible"`, `"confidence"`, `"error_bound"`, `"rewrite"`,
	} {
		if !strings.Contains(string(body), field) {
			t.Errorf("explain response missing documented field %s", field)
		}
	}
	qr := decodeQuery(t, body)
	if qr.Trace == nil || qr.Trace.Planner == nil {
		t.Fatal("explain trace missing planner decision")
	}
	if qr.Trace.Planner.Confidence != 0.99 {
		t.Fatalf("trace confidence %g, want the requested 0.99", qr.Trace.Planner.Confidence)
	}
	if len(qr.Trace.Planner.Candidates) < 2 {
		t.Fatalf("trace lists %d candidates", len(qr.Trace.Planner.Candidates))
	}
}

// TestBoundsValidation covers the request-validation surface for the new
// fields, and the timeout_ms <= 0 bugfix (previously an instantly-degraded
// answer; now a 400).
func TestBoundsValidation(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		name string
		path string
		req  QueryRequest
		want string
	}{
		{"zero timeout", "/v1/query", QueryRequest{SQL: testSQL, TimeoutMS: ms(0)}, "timeout_ms"},
		{"negative timeout", "/v1/query", QueryRequest{SQL: testSQL, TimeoutMS: ms(-10)}, "timeout_ms"},
		{"error_bound too large", "/v1/query", QueryRequest{SQL: testSQL, ErrorBound: 1}, "error_bound"},
		{"error_bound negative", "/v1/query", QueryRequest{SQL: testSQL, ErrorBound: -0.1}, "error_bound"},
		{"time_bound negative", "/v1/query", QueryRequest{SQL: testSQL, TimeBoundMS: -1}, "time_bound_ms"},
		{"confidence out of range", "/v1/query", QueryRequest{SQL: testSQL, ErrorBound: 0.1, Confidence: 1.5}, "confidence"},
		{"confidence without bounds", "/v1/query", QueryRequest{SQL: testSQL, Confidence: 0.9}, "confidence"},
		{"bounds on exact", "/v1/exact", QueryRequest{SQL: testSQL, ErrorBound: 0.1}, "/query only"},
	}
	for _, tc := range cases {
		resp, body := post(t, srv, tc.path, tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
		}
		if er := decodeErr(t, body); !strings.Contains(er.Error.Message, tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, er.Error.Message, tc.want)
		}
	}
}
