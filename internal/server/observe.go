package server

import "dynsample/internal/obs"

// Request-level instrumentation, recorded once per request in
// reqTrack.finish (and once per shed in Server.shed) — the HTTP layer's
// view of the metrics the lower layers break down further
// (aqp_core_answers_total by strategy, aqp_engine_rows_scanned_total by
// scan).
var (
	obsQueries = obs.Default().CounterVec("aqp_queries_total",
		"Queries served, by endpoint, strategy and terminal status "+
			"(ok, bad_request, timeout, canceled, shed, error).",
		"endpoint", "strategy", "status")
	obsLatency = obs.Default().HistogramVec("aqp_query_duration_seconds",
		"End-to-end request latency (decode through response encode).",
		obs.DefBuckets, "endpoint")
	obsRowsScanned = obs.Default().CounterVec("aqp_rows_scanned_total",
		"Rows scanned on behalf of served queries, by endpoint.", "endpoint")
	obsInflight = obs.Default().Gauge("aqp_inflight_queries",
		"Query and exact requests currently executing.")
	obsShed = obs.Default().Counter("aqp_load_shed_total",
		"Requests rejected at the admission gate with 503.")
	obsTimeouts = obs.Default().Counter("aqp_query_timeouts_total",
		"Requests that missed their deadline and returned 504.")
	obsPanics = obs.Default().Counter("aqp_panics_recovered_total",
		"Handler panics recovered to a 500 response.")
)
