package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynsample/internal/catalog"
	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/randx"
)

// rebuildFixture is a server with a catalog-backed rebuild configured over
// the shared test database.
func rebuildFixture(t *testing.T) (*Server, *httptest.Server, *catalog.Catalog, *engine.Database) {
	t.Helper()
	sys := testSystem(t, core.SmallGroupConfig{Workers: 4})
	cat, err := catalog.Open(t.TempDir(), catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Rebuild: RebuildConfig{
		Strategy: core.NewSmallGroup(core.SmallGroupConfig{BaseRate: 0.05, Seed: 1, Workers: 4}),
		Catalog:  cat,
		Workers:  4,
	}}
	srv := New(sys, cfg)
	srv.MarkGeneration(0, "preprocess")
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs, cat, sys.DB()
}

// normalizeResponse strips the fields that legitimately vary run to run
// (latency, rows read can differ only if sampling differed — keep it).
func normalizeResponse(t *testing.T, body []byte) QueryResponse {
	t.Helper()
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("unmarshal %q: %v", body, err)
	}
	qr.ElapsedUS = 0
	return qr
}

// TestRebuildUnderLoadZeroFailures is the acceptance criterion: concurrent
// query load across several generation swaps sees zero failed requests, and
// after the rebuild the answers are bit-identical to a cold build of the
// same data with the same strategy configuration.
func TestRebuildUnderLoadZeroFailures(t *testing.T) {
	_, hs, cat, db := rebuildFixture(t)
	q := QueryRequest{SQL: "SELECT region, COUNT(*), AVG(amount) FROM T GROUP BY region"}

	const queriers = 8
	var failures, total atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < queriers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, body := post(t, hs, "/query", q)
				total.Add(1)
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					t.Errorf("query failed during rebuild: %d %s", resp.StatusCode, body)
					return
				}
			}
		}()
	}

	// Several rebuilds while the hammering goes on.
	for i := 1; i <= 3; i++ {
		resp, body := post(t, hs, "/admin/rebuild", struct{}{})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rebuild %d: %d %s", i, resp.StatusCode, body)
		}
		var st RebuildStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.Generation != uint64(i) || !st.Persisted {
			t.Fatalf("rebuild %d status = %+v", i, st)
		}
	}
	close(stop)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d/%d requests failed across rebuilds", failures.Load(), total.Load())
	}
	if total.Load() == 0 {
		t.Fatal("no queries ran during rebuilds")
	}
	if gens := cat.Generations(); len(gens) != 3 {
		t.Fatalf("catalog generations = %v", gens)
	}

	// Determinism: a cold build of the same data with the rebuild strategy's
	// exact configuration must answer bit-identically to the served state.
	coldSys := core.NewSystem(db)
	if err := coldSys.AddStrategy(core.NewSmallGroup(core.SmallGroupConfig{BaseRate: 0.05, Seed: 1, Workers: 4})); err != nil {
		t.Fatal(err)
	}
	coldSrv := httptest.NewServer(New(coldSys, Config{}).Handler())
	defer coldSrv.Close()
	_, hotBody := post(t, hs, "/query", q)
	_, coldBody := post(t, coldSrv, "/query", q)
	hot, cold := normalizeResponse(t, hotBody), normalizeResponse(t, coldBody)
	if !reflect.DeepEqual(hot, cold) {
		t.Fatalf("rebuilt answers diverge from cold build:\nhot:  %+v\ncold: %+v", hot, cold)
	}
}

// TestRebuildSingleFlight: concurrent rebuild requests coalesce — one wins,
// the others fail fast with 409 rebuild_in_progress.
func TestRebuildSingleFlight(t *testing.T) {
	srv, hs, _, _ := rebuildFixture(t)
	// Hold the single-flight slot directly so the HTTP request deterministically
	// collides with an "in-progress" rebuild.
	if !srv.health.rebuilding.CompareAndSwap(false, true) {
		t.Fatal("fixture already rebuilding")
	}
	resp, body := post(t, hs, "/admin/rebuild", struct{}{})
	srv.health.rebuilding.Store(false)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("concurrent rebuild: %d %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error.Code != CodeRebuildInProgress {
		t.Fatalf("error body = %s", body)
	}
	// Slot released: the next rebuild succeeds.
	resp, body = post(t, hs, "/admin/rebuild", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebuild after release: %d %s", resp.StatusCode, body)
	}
}

// TestRebuildNotConfigured: without a strategy the endpoint reports 501
// instead of crashing.
func TestRebuildNotConfigured(t *testing.T) {
	hs := testServer(t)
	resp, body := post(t, hs, "/admin/rebuild", struct{}{})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("unconfigured rebuild: %d %s", resp.StatusCode, body)
	}
}

// TestRebuildPersistedSnapshotRoundTrips: the generation a rebuild persists
// is loadable by catalog recovery and answers like the serving state.
func TestRebuildPersistedSnapshotRoundTrips(t *testing.T) {
	_, hs, cat, _ := rebuildFixture(t)
	if resp, body := post(t, hs, "/admin/rebuild", struct{}{}); resp.StatusCode != http.StatusOK {
		t.Fatalf("rebuild: %d %s", resp.StatusCode, body)
	}
	var p core.Prepared
	res, err := cat.LoadLatest(func(r io.Reader) error {
		var derr error
		p, derr = core.LoadSmallGroup(r)
		return derr
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != 1 || p == nil || p.SampleRows() == 0 {
		t.Fatalf("recovered gen %d, rows %v", res.Generation, p)
	}
}

func TestHealthzReadyzEndpoints(t *testing.T) {
	srv, hs, _, _ := rebuildFixture(t)
	srv.MarkGeneration(7, "snapshot")

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if h.Status != "ok" || h.Generation != 7 || h.Source != "snapshot" || h.Rebuilding {
		t.Fatalf("healthz = %+v", h)
	}
	if _, err := time.Parse(time.RFC3339, h.LastRebuild); err != nil {
		t.Fatalf("lastRebuild %q: %v", h.LastRebuild, err)
	}

	resp, err = http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var r ReadyResponse
	json.NewDecoder(resp.Body).Decode(&r)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !r.Ready {
		t.Fatalf("readyz = %d %+v", resp.StatusCode, r)
	}

	// After a rebuild, healthz reflects the new generation and source.
	if resp, body := post(t, hs, "/admin/rebuild", struct{}{}); resp.StatusCode != http.StatusOK {
		t.Fatalf("rebuild: %d %s", resp.StatusCode, body)
	}
	resp, _ = http.Get(hs.URL + "/healthz")
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if h.Generation != 1 || h.Source != "rebuild" {
		t.Fatalf("healthz after rebuild = %+v", h)
	}
}

// TestReadyzNotReady: a server whose strategy has no prepared state reports
// 503 so orchestrators keep traffic away.
func TestReadyzNotReady(t *testing.T) {
	region := engine.NewColumn("region", engine.String)
	fact := engine.NewTable("sales", region)
	rng := randx.New(3)
	for i := 0; i < 10; i++ {
		region.AppendString(string(rune('a' + rng.Intn(3))))
		fact.EndRow()
	}
	sys := core.NewSystem(engine.MustNewDatabase("d", fact))
	hs := httptest.NewServer(New(sys, Config{}).Handler())
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var r ReadyResponse
	json.NewDecoder(resp.Body).Decode(&r)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || r.Ready || r.Reason == "" {
		t.Fatalf("readyz = %d %+v", resp.StatusCode, r)
	}
}

// TestAutoRebuildTicks: the periodic rebuild loop advances generations and
// stops when its context is cancelled.
func TestAutoRebuildTicks(t *testing.T) {
	if testing.Short() {
		t.Skip("timer-driven")
	}
	srv, hs, cat, _ := rebuildFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		srv.AutoRebuild(ctx, 50*time.Millisecond)
		close(done)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for cat.Generation() < 2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("AutoRebuild did not stop on cancel")
	}
	if g := cat.Generation(); g < 2 {
		t.Fatalf("auto rebuild reached generation %d, want >= 2", g)
	}
	// Server still healthy afterwards.
	if resp, body := post(t, hs, "/query", QueryRequest{SQL: "SELECT region, COUNT(*) FROM T GROUP BY region"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query after auto rebuilds: %d %s", resp.StatusCode, body)
	}
}
