package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"net/http/httptest"

	"dynsample/internal/core"
	"dynsample/internal/ingest"
)

// TestIngestQueryRebuildStress drives concurrent ingest writers, query
// readers, and admin rebuilds against one server under the race detector.
// Requirements: zero failed queries, zero failed ingests (overload and
// rebuild-conflict rejections are allowed, errors are not), and — once the
// writers drain and a final rebuild lands — answers that exactly match a
// cold rebuild of the same data, proving the online maintenance left the
// sample family consistent with the base it grew.
func TestIngestQueryRebuildStress(t *testing.T) {
	srv, coord, sys := ingestServer(t, ingest.Config{Online: core.OnlineConfig{Seed: 44}})
	const writers = 4
	const batchesPerWriter = 25
	const readers = 8

	post := func(path string, body any) (int, []byte, error) {
		b, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		return resp.StatusCode, out, err
	}

	var wg sync.WaitGroup
	var queryFailures, ingestFailures atomic.Int64
	stop := make(chan struct{})

	// Readers hammer /query and /exact until the writers drain; any non-200
	// is a failure (load shedding is off in this fixture).
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sqls := []string{
				"SELECT region, COUNT(*) FROM T GROUP BY region",
				"SELECT region, SUM(amount) FROM T GROUP BY region",
			}
			paths := []string{"/v1/query", "/v1/exact"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				code, body, err := post(paths[i%2], QueryRequest{SQL: sqls[(r+i)%2]})
				if err != nil || code != http.StatusOK {
					queryFailures.Add(1)
					t.Errorf("reader %d: code=%d err=%v body=%s", r, code, err, body)
					return
				}
			}
		}(r)
	}

	// Writers stream batches: mostly known regions, plus writer-specific new
	// ones, so reservoir swaps, small-group inserts and drift all move.
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for b := 0; b < batchesPerWriter; b++ {
				rows := make([][]json.RawMessage, 20)
				for i := range rows {
					region := fmt.Sprintf("w%d", w)
					if rng.Intn(3) == 0 {
						region = "r" + string(rune('a'+rng.Intn(26))) + string(rune('a'+rng.Intn(26)))
					}
					rows[i] = []json.RawMessage{
						json.RawMessage(fmt.Sprintf("%q", region)),
						json.RawMessage(fmt.Sprintf("%.2f", rng.Float64()*50)),
					}
				}
				id := fmt.Sprintf("w%d-b%d", w, b)
				for {
					code, body, err := post("/v1/ingest", IngestRequest{Rows: rows, BatchID: id})
					if err != nil {
						ingestFailures.Add(1)
						t.Errorf("writer %d: %v", w, err)
						return
					}
					if code == http.StatusServiceUnavailable {
						continue // backpressure: retry the same id
					}
					if code != http.StatusOK {
						ingestFailures.Add(1)
						t.Errorf("writer %d batch %d: status %d: %s", w, b, code, body)
						return
					}
					break
				}
			}
		}(w)
	}

	// A rebuild loop swaps generations under everything else. 409 conflicts
	// with the drift-triggered rebuild are expected; errors are not.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			code, body, err := post("/v1/admin/rebuild", struct{}{})
			if err != nil || (code != http.StatusOK && code != http.StatusConflict) {
				t.Errorf("rebuild: code=%d err=%v body=%s", code, err, body)
				return
			}
		}
	}()

	writerWG.Wait()
	close(stop)
	wg.Wait()
	if queryFailures.Load() > 0 || ingestFailures.Load() > 0 {
		t.Fatalf("%d query failures, %d ingest failures", queryFailures.Load(), ingestFailures.Load())
	}

	// Drain: one final rebuild so the samples are a pure function of the
	// final base data, then compare every group against a cold preprocess of
	// that same data. Retry while the drift-triggered rebuild finishes.
	wantGen := coord.Generation()
	if wantGen != writers*batchesPerWriter {
		t.Fatalf("generation = %d, want %d (every batch exactly once)", wantGen, writers*batchesPerWriter)
	}
	for {
		code, body, err := post("/v1/admin/rebuild", struct{}{})
		if err != nil {
			t.Fatal(err)
		}
		if code == http.StatusOK {
			break
		}
		if code != http.StatusConflict {
			t.Fatalf("final rebuild: status %d: %s", code, body)
		}
	}

	code, body, err := post("/v1/query", QueryRequest{SQL: "SELECT region, COUNT(*), SUM(amount) FROM T GROUP BY region"})
	if err != nil || code != http.StatusOK {
		t.Fatalf("post-drain query: code=%d err=%v", code, err)
	}
	var live QueryResponse
	if err := json.Unmarshal(body, &live); err != nil {
		t.Fatal(err)
	}

	// Cold rebuild: preprocess the exact same final base data (immutable, so
	// sharing it is safe) in a fresh system with the same config and seed,
	// served by its own server, and compare group by group.
	sgCfg := core.SmallGroupConfig{BaseRate: 0.05, SmallGroupFraction: 0.05, DistinctLimit: 2000, Seed: 1}
	cold := core.NewSystem(sys.DB())
	if err := cold.AddStrategy(core.NewSmallGroup(sgCfg)); err != nil {
		t.Fatal(err)
	}
	coldSrv := httptest.NewServer(New(cold, Config{}).Handler())
	defer coldSrv.Close()
	b, _ := json.Marshal(QueryRequest{SQL: "SELECT region, COUNT(*), SUM(amount) FROM T GROUP BY region"})
	resp, err := http.Post(coldSrv.URL+"/v1/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rec QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Groups) != len(live.Groups) {
		t.Fatalf("cold rebuild has %d groups, live has %d", len(rec.Groups), len(live.Groups))
	}
	coldByKey := map[string]GroupJSON{}
	for _, g := range rec.Groups {
		coldByKey[g.Key[0]] = g
	}
	for _, g := range live.Groups {
		cg, ok := coldByKey[g.Key[0]]
		if !ok {
			t.Fatalf("group %q missing from cold rebuild", g.Key[0])
		}
		if g.Exact != cg.Exact {
			t.Errorf("group %q exactness: live=%v cold=%v", g.Key[0], g.Exact, cg.Exact)
		}
		for i := range g.Values {
			if g.Values[i] != cg.Values[i] {
				t.Errorf("group %q value %d: live=%g cold=%g", g.Key[0], i, g.Values[i], cg.Values[i])
			}
		}
	}
}
