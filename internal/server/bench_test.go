package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"dynsample/internal/core"
	"dynsample/internal/ingest"
)

// benchQuery posts one /v1/query and fails the benchmark on any non-200.
func benchQuery(b *testing.B, url string, body []byte) {
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkConcurrentQuery measures parallel query throughput through the
// whole HTTP stack. The baseline has no ingestion configured; the
// with-ingest variant runs the same queries while a writer streams batches,
// so bench.sh can show the ingest subsystem leaves query latency within
// noise.
func BenchmarkConcurrentQuery(b *testing.B) {
	body, _ := json.Marshal(QueryRequest{SQL: "SELECT region, COUNT(*), SUM(amount) FROM T GROUP BY region"})

	b.Run("Baseline", func(b *testing.B) {
		sys := testSystem(b, core.SmallGroupConfig{Workers: 4})
		srv := httptest.NewServer(New(sys, Config{}).Handler())
		defer srv.Close()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				benchQuery(b, srv.URL, body)
			}
		})
	})

	b.Run("WithIngestLoad", func(b *testing.B) {
		sys := testSystem(b, core.SmallGroupConfig{
			Workers: 4, BaseRate: 0.05, SmallGroupFraction: 0.05, DistinctLimit: 2000,
		})
		w, err := ingest.OpenWAL(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		coord, err := ingest.New(sys, w, ingest.Config{
			Online: core.OnlineConfig{Seed: 9, SmallGroupFraction: 0.05},
		})
		if err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(New(sys, Config{Ingest: coord}).Handler())
		defer srv.Close()
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			row := [][]json.RawMessage{{json.RawMessage(`"rb"`), json.RawMessage(`3.5`)}}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ib, _ := json.Marshal(IngestRequest{Rows: row, BatchID: fmt.Sprintf("bench-%d", i)})
				resp, err := http.Post(srv.URL+"/v1/ingest", "application/json", bytes.NewReader(ib))
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				benchQuery(b, srv.URL, body)
			}
		})
		b.StopTimer()
		close(stop)
		<-done
	})
}
