package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dynsample/internal/core"
	"dynsample/internal/obs"
)

const obsTestSQL = "SELECT region, COUNT(*), SUM(amount) FROM T GROUP BY region"

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, body
}

// promLine matches one Prometheus sample line: a metric name, optional
// labels, and a float value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [-+0-9.eEInf]+$`)

// parseProm parses a /metrics body into sampleLine → value, failing the test
// on any line that is not a comment or a well-formed sample.
func parseProm(t *testing.T, body []byte) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	return samples
}

func TestMetricsExposition(t *testing.T) {
	srv := testServer(t)
	// Serve at least one query so the request-path series exist.
	if resp, body := post(t, srv, "/query", QueryRequest{SQL: obsTestSQL}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}

	resp, body := get(t, srv, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content-type %q is not Prometheus text exposition", ct)
	}
	samples := parseProm(t, body)

	// The acceptance bar: at least 12 distinct series names, each declared
	// with # HELP and # TYPE.
	families := map[string]bool{}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families[strings.Fields(line)[2]] = true
		}
	}
	if len(families) < 12 {
		t.Errorf("only %d metric families exposed, want >= 12: %v", len(families), families)
	}
	for f := range families {
		if !strings.Contains(string(body), "# HELP "+f+" ") {
			t.Errorf("family %s has no # HELP line", f)
		}
	}

	// The layers the PR instruments must all be visible.
	for _, want := range []string{
		`aqp_queries_total{endpoint="query",strategy="smallgroup",status="ok"}`,
		`aqp_core_answers_total{strategy="smallgroup"}`,
		"aqp_engine_scans_total",
		"aqp_engine_rows_scanned_total",
		`aqp_rows_scanned_total{endpoint="query"}`,
		"aqp_inflight_queries",
		`aqp_query_duration_seconds_count{endpoint="query"}`,
	} {
		if _, ok := samples[want]; !ok {
			t.Errorf("series %q missing from /metrics", want)
		}
	}
	// Histogram exposition: cumulative buckets ending in +Inf that equal the
	// count.
	inf := `aqp_query_duration_seconds_bucket{endpoint="query",le="+Inf"}`
	if samples[inf] != samples[`aqp_query_duration_seconds_count{endpoint="query"}`] {
		t.Errorf("+Inf bucket %v != count %v", samples[inf],
			samples[`aqp_query_duration_seconds_count{endpoint="query"}`])
	}

	// Counters are monotonic: another query strictly increases the request
	// counter and the rows-scanned totals.
	post(t, srv, "/query", QueryRequest{SQL: obsTestSQL})
	_, body2 := get(t, srv, "/metrics")
	samples2 := parseProm(t, body2)
	for _, c := range []string{
		`aqp_queries_total{endpoint="query",strategy="smallgroup",status="ok"}`,
		"aqp_engine_rows_scanned_total",
		`aqp_core_answers_total{strategy="smallgroup"}`,
	} {
		if samples2[c] <= samples[c] {
			t.Errorf("%s did not increase: %v -> %v", c, samples[c], samples2[c])
		}
	}
	for name, v := range samples {
		if strings.HasSuffix(name, "_total") && samples2[name] < v {
			t.Errorf("counter %s went backwards: %v -> %v", name, v, samples2[name])
		}
	}
}

func TestExplainTraceAccounting(t *testing.T) {
	srv := testServer(t)
	resp, body := post(t, srv, "/query", QueryRequest{SQL: obsTestSQL, Explain: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Trace == nil {
		t.Fatal("explain response has no trace")
	}
	tr := qr.Trace

	if tr.RequestID == "" {
		t.Error("trace has no request_id")
	}
	if tr.RequestID != resp.Header.Get("X-Request-ID") {
		t.Errorf("trace request_id %q != response header %q", tr.RequestID, resp.Header.Get("X-Request-ID"))
	}
	if tr.SQL != obsTestSQL || tr.Strategy != "smallgroup" || tr.Status != "ok" {
		t.Errorf("trace identity: sql=%q strategy=%q status=%q", tr.SQL, tr.Strategy, tr.Status)
	}

	// Every pipeline stage must be present exactly once, and the stage
	// durations must tile the request: they cannot exceed the total, and the
	// gaps between them (JSON decode, scheduling) must stay small.
	want := []string{"parse", "select", "execute", "combine", "finalize", "present"}
	got := map[string]int64{}
	var sum int64
	for _, st := range tr.Stages {
		if _, dup := got[st.Name]; dup {
			t.Errorf("duplicate stage %q", st.Name)
		}
		if st.Micros < 0 || st.OffsetMicros < 0 {
			t.Errorf("stage %q has negative timing: %+v", st.Name, st)
		}
		got[st.Name] = st.Micros
		sum += st.Micros
	}
	for _, name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("stage %q missing from trace (have %v)", name, tr.Stages)
		}
	}
	if sum > tr.TotalMicros {
		t.Errorf("stage sum %dus exceeds total %dus", sum, tr.TotalMicros)
	}

	// The selected sample set must account for every scanned row: per-step
	// rows sum exactly to the answer's RowsRead.
	if len(tr.Samples) == 0 {
		t.Fatal("trace has no selected sample set")
	}
	var sampleRows int64
	for _, s := range tr.Samples {
		if s.Table == "" {
			t.Errorf("sample step with empty table name: %+v", s)
		}
		if s.Shards < 1 {
			t.Errorf("sample %s has %d shards, want >= 1", s.Table, s.Shards)
		}
		sampleRows += s.Rows
	}
	if sampleRows != tr.RowsRead {
		t.Errorf("sample rows sum %d != trace rows_read %d", sampleRows, tr.RowsRead)
	}
	if tr.RowsRead != qr.RowsRead {
		t.Errorf("trace rows_read %d != response rowsRead %d", tr.RowsRead, qr.RowsRead)
	}
	if tr.SamplingFraction <= 0 || tr.SamplingFraction > 1.5 {
		t.Errorf("sampling_fraction %v out of range", tr.SamplingFraction)
	}

	// Without explain the response stays lean.
	_, body = post(t, srv, "/query", QueryRequest{SQL: obsTestSQL})
	var lean QueryResponse
	if err := json.Unmarshal(body, &lean); err != nil {
		t.Fatal(err)
	}
	if lean.Trace != nil || lean.Rewrite != "" {
		t.Error("non-explain response carries trace or rewrite")
	}
}

func TestSlowlogRetainsSlowest(t *testing.T) {
	srv := testServer(t)
	for i := 0; i < 5; i++ {
		if resp, body := post(t, srv, "/query", QueryRequest{SQL: obsTestSQL}); resp.StatusCode != http.StatusOK {
			t.Fatalf("query status %d: %s", resp.StatusCode, body)
		}
	}
	resp, body := get(t, srv, "/debug/slowlog")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sl SlowLogResponse
	if err := json.Unmarshal(body, &sl); err != nil {
		t.Fatal(err)
	}
	if sl.Capacity != obs.DefaultSlowLogSize {
		t.Errorf("capacity %d, want default %d", sl.Capacity, obs.DefaultSlowLogSize)
	}
	if len(sl.Entries) != 5 {
		t.Fatalf("%d entries, want 5", len(sl.Entries))
	}
	for i, e := range sl.Entries {
		if i > 0 && e.Micros > sl.Entries[i-1].Micros {
			t.Errorf("entries not sorted slowest-first at %d: %d > %d", i, e.Micros, sl.Entries[i-1].Micros)
		}
		if e.SQL != obsTestSQL || e.RequestID == "" || e.Status != "ok" {
			t.Errorf("entry %d incomplete: %+v", i, e)
		}
		if len(e.Trace.Stages) == 0 {
			t.Errorf("entry %d has no trace stages", i)
		}
	}
}

func TestSlowlogBounded(t *testing.T) {
	sys := testSystem(t, core.SmallGroupConfig{})
	srv := httptest.NewServer(New(sys, Config{SlowLogSize: 2}).Handler())
	t.Cleanup(srv.Close)
	for i := 0; i < 6; i++ {
		post(t, srv, "/query", QueryRequest{SQL: obsTestSQL})
	}
	_, body := get(t, srv, "/debug/slowlog")
	var sl SlowLogResponse
	if err := json.Unmarshal(body, &sl); err != nil {
		t.Fatal(err)
	}
	if sl.Capacity != 2 || len(sl.Entries) != 2 {
		t.Errorf("capacity %d entries %d, want 2 and 2", sl.Capacity, len(sl.Entries))
	}
}

func TestRequestIDHeader(t *testing.T) {
	srv := testServer(t)

	// Client-supplied IDs are echoed verbatim.
	req, _ := http.NewRequest("POST", srv.URL+"/query",
		strings.NewReader(fmt.Sprintf(`{"sql":%q}`, obsTestSQL)))
	req.Header.Set("X-Request-ID", "client-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-abc-123" {
		t.Errorf("echoed id %q, want client-abc-123", got)
	}

	// Missing IDs are generated, even on non-query routes.
	resp2, _ := get(t, srv, "/columns")
	if resp2.Header.Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID generated for /columns")
	}

	// Oversized IDs are truncated rather than echoed whole.
	req3, _ := http.NewRequest("GET", srv.URL+"/strategies", nil)
	req3.Header.Set("X-Request-ID", strings.Repeat("a", 300))
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get("X-Request-ID"); got != strings.Repeat("a", 128) {
		t.Errorf("oversized id not truncated to 128: %d bytes", len(got))
	}

	// Control characters (unsendable through net/http, so tested directly)
	// force a fresh generated ID.
	if got := sanitizeRequestID("evil\x01id"); got != "" {
		t.Errorf("sanitizeRequestID kept hostile id %q", got)
	}
}

func TestV1Aliases(t *testing.T) {
	srv := testServer(t)
	// Metadata endpoints answer identically on both surfaces.
	for _, path := range []string{"/columns", "/strategies"} {
		_, legacy := get(t, srv, path)
		_, v1 := get(t, srv, "/v1"+path)
		if string(legacy) != string(v1) {
			t.Errorf("%s and /v1%s differ:\n%s\n%s", path, path, legacy, v1)
		}
	}
	// Query endpoints accept the same body on both.
	for _, path := range []string{"/query", "/v1/query", "/exact", "/v1/exact"} {
		resp, body := post(t, srv, path, QueryRequest{SQL: obsTestSQL})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status %d: %s", path, resp.StatusCode, body)
		}
	}
	// Admin surface: both rebuild paths report the same not-configured error.
	for _, path := range []string{"/admin/rebuild", "/v1/admin/rebuild"} {
		resp, body := post(t, srv, path, nil)
		if resp.StatusCode != http.StatusNotImplemented {
			t.Errorf("%s status %d, want 501: %s", path, resp.StatusCode, body)
		}
		if er := decodeErr(t, body); er.Error.Code != CodeUnimplemented {
			t.Errorf("%s code %q, want %q", path, er.Error.Code, CodeUnimplemented)
		}
	}
}

func TestErrorEnvelope(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"bad sql", "POST", "/query", `{"sql":"NOT SQL"}`, http.StatusBadRequest, CodeBadRequest},
		{"bad json", "POST", "/v1/query", `{`, http.StatusBadRequest, CodeBadRequest},
		{"unknown path", "GET", "/nope", "", http.StatusNotFound, CodeNotFound},
		{"unknown v2 path", "POST", "/v2/query", `{"sql":"x"}`, http.StatusNotFound, CodeNotFound},
		{"wrong method", "GET", "/query", "", http.StatusNotFound, CodeNotFound},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.wantStatus, body)
			continue
		}
		// The envelope must decode strictly: one "error" object with code and
		// message.
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(body, &raw); err != nil {
			t.Errorf("%s: body is not JSON: %s", tc.name, body)
			continue
		}
		if _, ok := raw["error"]; !ok || len(raw) != 1 {
			t.Errorf("%s: body is not the error envelope: %s", tc.name, body)
			continue
		}
		er := decodeErr(t, body)
		if er.Error.Code != tc.wantCode {
			t.Errorf("%s: code %q, want %q", tc.name, er.Error.Code, tc.wantCode)
		}
		if er.Error.Message == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}
}
