package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"

	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/faults"
)

// This file is the shard-mode surface of the server: the raw (merge-ready)
// query response the coordinator consumes, and GET /shard, the summary a
// coordinator fetches when it admits this shard. The server deliberately
// knows nothing about the cluster topology — internal/cluster imports this
// package, never the reverse — so a shard is just a normal aqpd process
// whose responses can also be had in raw form.

// RawQueryResponse is the body of POST /query and /exact when the request
// sets "raw": true: the full accumulator state of the answer, suitable for
// engine.ResultFromWire + Result.Merge on the coordinator, plus the scalar
// answer metadata. Confidence intervals are deliberately absent — they are
// not additive, so the coordinator recomputes them from the merged
// accumulators.
type RawQueryResponse struct {
	Result     *engine.ResultWire `json:"result"`
	RowsRead   int64              `json:"rowsRead,omitempty"`
	ElapsedUS  int64              `json:"elapsedMicros"`
	Generation uint64             `json:"generation"`
	Degraded   bool               `json:"degraded,omitempty"`
	Plan       string             `json:"plan,omitempty"`
	Predicted  *float64           `json:"predicted,omitempty"`
	Achieved   *float64           `json:"achieved,omitempty"`
}

// shardSummary caches the (expensive: full column scans) join summary per
// data generation, so a coordinator probing GET /shard on every breaker
// half-open cycle does not rescan an unchanged partition.
type shardSummary struct {
	mu    sync.Mutex
	gen   uint64
	stats *core.ShardStats
}

// handleShard implements GET /shard: the summary statistics the coordinator
// registers at shard join (row counts, sample size, rare mass, scan rate,
// per-column value sets). Recomputed only when the data generation moved.
func (s *Server) handleShard(w http.ResponseWriter, _ *http.Request) {
	gen := s.sys.DataGeneration()
	s.shard.mu.Lock()
	if s.shard.stats == nil || s.shard.gen != gen {
		st, err := core.ComputeShardStats(s.sys, s.strategy, s.cfg.ShardID, s.cfg.Shards)
		if err != nil {
			s.shard.mu.Unlock()
			writeError(w, http.StatusInternalServerError, CodeInternal, err)
			return
		}
		s.shard.stats, s.shard.gen = st, gen
	}
	st := s.shard.stats
	s.shard.mu.Unlock()
	writeJSON(w, st)
}

// writeShardJSON writes a raw shard response, honoring the PointShardBody
// cut hook: a registered CutHook can truncate the body mid-stream, which —
// because Content-Length is set to the full length first — surfaces on the
// coordinator side as an unexpected EOF, exactly like a connection dying
// under the response.
func (s *Server) writeShardJSON(w http.ResponseWriter, v any) {
	if !faults.Active() {
		writeJSON(w, v)
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	b = append(b, '\n')
	n := faults.FireCut(faults.PointShardBody, s.cfg.ShardID, len(b))
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.Write(b[:n])
}

// Wrap applies the server's outer middleware — request-ID echo and panic
// recovery — to any handler. The cluster coordinator wraps its own routes
// with it so both tiers present one envelope discipline.
func Wrap(h http.Handler) http.Handler { return requestID(recoverPanics(h)) }

// WriteJSON writes v as a JSON 200 exactly like the server's own handlers
// (body fully encoded before the first byte is committed).
func WriteJSON(w http.ResponseWriter, v any) { writeJSON(w, v) }

// WriteError writes the standard error envelope.
func WriteError(w http.ResponseWriter, status int, code string, err error) {
	writeError(w, status, code, err)
}

// WriteErrorRetry writes the standard error envelope with a retry hint in
// the body (the caller sets the Retry-After header itself).
func WriteErrorRetry(w http.ResponseWriter, status int, code string, retryAfterMS int64, err error) {
	writeErrorRetry(w, status, code, retryAfterMS, err)
}

// RetryAfterSecs exposes the jittered Retry-After computation so the
// coordinator's 503s spread client retries the same way shard 503s do.
func RetryAfterSecs(configured, fallback time.Duration) int {
	return retryAfterSecs(configured, fallback)
}
