// Package server exposes the AQP middleware over HTTP, matching the
// deployment shape §2 describes for sampling-based systems: "a thin layer of
// middleware which re-writes queries to run against sample tables". Clients
// POST SQL; the server compiles it, answers from the pre-built samples, and
// returns per-group estimates with confidence intervals and exactness flags.
//
// # Concurrency
//
// The handler serves any number of /query, /exact and metadata requests in
// parallel (net/http runs each request on its own goroutine). This is safe
// because shared state is either immutable or swapped atomically: the base
// database and every pre-built sample table never change once built, all
// per-request state — the parsed statement, the rewrite plan, partial and
// combined results, response buffers — lives on the request's own
// goroutine, and the registered Prepared set sits behind an atomic pointer
// in core.System. A rebuild (POST /admin/rebuild, or AutoRebuild on a
// timer) pre-processes a fresh sample generation in the background, swaps
// it in with core.SwapPrepared, and persists it to the sample catalog;
// queries in flight during the swap finish on the generation they started
// with. Set worker budgets (core.WorkerConfigurable) before calling
// Handler; that mutation is not synchronised.
//
// Each request may itself fan out: with a worker budget configured
// (SmallGroupConfig.Workers, or the -workers flag of aqpd), one query's
// rewritten UNION ALL steps execute as parallel partitioned scans. See
// ARCHITECTURE.md for the full concurrency model.
//
// # Deadlines and overload
//
// Every /query and /exact runs under a context derived from the request: a
// client disconnect, the server's Config.DefaultTimeout, or the request's
// own timeout_ms field cancels in-flight shard scans at the next shard
// boundary. A missed deadline returns 504 with a structured error; under
// deadline pressure the small-group strategy may instead degrade to the
// cheap uniform overall sample and flag "degraded": true. When
// Config.MaxInflight is set, excess concurrent queries are shed immediately
// with 503 + Retry-After rather than queueing unboundedly, and a panicking
// handler is recovered to a 500 without killing the process. See
// ARCHITECTURE.md §6.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/faults"
	"dynsample/internal/sqlparse"
)

// Config tunes the server's robustness behaviour. The zero value preserves
// the permissive defaults: no deadline, no admission limit.
type Config struct {
	// DefaultTimeout bounds each /query and /exact unless the request
	// carries its own timeout_ms. Zero means no default deadline.
	DefaultTimeout time.Duration
	// MaxInflight caps concurrently executing /query + /exact requests;
	// excess requests are shed with 503 and a Retry-After header instead of
	// queueing. Zero means unlimited.
	MaxInflight int
	// RetryAfter is the Retry-After hint on shed requests; zero means 1s.
	RetryAfter time.Duration
	// Rebuild enables zero-downtime sample rebuilds (/admin/rebuild and
	// AutoRebuild); the zero value disables them. See RebuildConfig.
	Rebuild RebuildConfig
}

// Server routes HTTP requests to a core.System. Configuration fields are
// read-only after construction; the only mutable state is the atomically
// swapped Prepared set inside core.System and the healthState atomics, so
// one Server safely backs concurrent requests even while a rebuild swaps
// sample generations underneath them.
type Server struct {
	sys      *core.System
	strategy string
	cfg      Config
	inflight chan struct{} // admission semaphore; nil = unlimited
	health   healthState
}

// New returns a server answering queries with the named registered strategy,
// with the zero Config. The system must be fully configured before the
// returned server starts handling requests; see the package comment for the
// concurrency contract.
func New(sys *core.System, strategy string) *Server {
	return NewWithConfig(sys, strategy, Config{})
}

// NewWithConfig is New with explicit deadline and admission settings.
func NewWithConfig(sys *core.System, strategy string, cfg Config) *Server {
	s := &Server{sys: sys, strategy: strategy, cfg: cfg}
	if cfg.MaxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	return s
}

// QueryRequest is the body of POST /query and POST /exact.
type QueryRequest struct {
	SQL string `json:"sql"`
	// Explain additionally returns the rewritten UNION ALL sample query.
	Explain bool `json:"explain,omitempty"`
	// TimeoutMS, when positive, overrides the server's default per-request
	// deadline for this query. A missed deadline returns 504.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// GroupJSON is one group of an answer.
type GroupJSON struct {
	Key    []string  `json:"key"`
	Values []float64 `json:"values"`
	Exact  bool      `json:"exact"`
	// CI holds [lo, hi] per value; omitted for exact queries.
	CI [][2]float64 `json:"ci,omitempty"`
}

// QueryResponse is the body returned by /query and /exact.
type QueryResponse struct {
	Columns   []string    `json:"columns"`
	Groups    []GroupJSON `json:"groups"`
	RowsRead  int64       `json:"rowsRead,omitempty"`
	ElapsedUS int64       `json:"elapsedMicros"`
	Rewrite   string      `json:"rewrite,omitempty"`
	// Degraded is set when deadline pressure made the strategy fall back to
	// the uniform overall sample instead of its full rewrite.
	Degraded bool `json:"degraded,omitempty"`
}

// ErrorResponse is returned with non-2xx statuses. Code is a stable
// machine-readable discriminator (e.g. "deadline_exceeded", "overloaded");
// Error is human-readable detail.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// Error codes used in ErrorResponse.Code.
const (
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeOverloaded       = "overloaded"
	CodeInternal         = "internal"
)

// Handler returns the HTTP routes, wrapped in the panic-recovery middleware;
// /query and /exact additionally pass through admission control.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.admit(s.handleQuery))
	mux.HandleFunc("POST /exact", s.admit(s.handleExact))
	mux.HandleFunc("GET /columns", s.handleColumns)
	mux.HandleFunc("GET /strategies", s.handleStrategies)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /admin/rebuild", s.handleRebuild)
	return recoverPanics(mux)
}

// recoverPanics converts a panic on the request goroutine into a 500 so one
// poisoned request cannot take down the process. If the handler had already
// written a response prefix the error body is appended to it — the client
// sees a malformed payload, which is the best that can be done post-commit.
func recoverPanics(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				writeErrCode(w, http.StatusInternalServerError, CodeInternal,
					fmt.Errorf("internal error: recovered panic: %v", v))
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// admit applies the MaxInflight admission semaphore: requests beyond the cap
// are shed immediately with 503 + Retry-After (load shedding beats unbounded
// queueing — queued requests would miss their deadlines anyway and drag down
// admitted ones). With no cap configured it is the identity.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	if s.inflight == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			h(w, r)
		default:
			retry := s.cfg.RetryAfter
			if retry <= 0 {
				retry = time.Second
			}
			secs := int(retry.Round(time.Second) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeErrCode(w, http.StatusServiceUnavailable, CodeOverloaded,
				fmt.Errorf("server at max in-flight queries (%d); retry after %ds", s.cfg.MaxInflight, secs))
		}
	}
}

func (s *Server) compile(w http.ResponseWriter, r *http.Request) (*sqlparse.Compiled, *QueryRequest, bool) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return nil, nil, false
	}
	if req.TimeoutMS < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid timeout_ms %d: must be >= 0", req.TimeoutMS))
		return nil, nil, false
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("empty sql"))
		return nil, nil, false
	}
	stmt, err := sqlparse.Parse(strings.TrimSuffix(strings.TrimSpace(req.SQL), ";"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return nil, nil, false
	}
	compiled, err := sqlparse.Compile(stmt, s.sys.DB())
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return nil, nil, false
	}
	return compiled, &req, true
}

// queryContext derives the execution context for one request: the request's
// own context (cancelled when the client disconnects) bounded by timeout_ms
// if given, else by the server default.
func (s *Server) queryContext(r *http.Request, req *QueryRequest) (context.Context, context.CancelFunc) {
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		return context.WithTimeout(r.Context(), timeout)
	}
	return r.Context(), func() {}
}

// writeExecErr maps an execution error to a status: 504 for a missed
// deadline, nothing at all for a vanished client (the connection is gone;
// any body would be discarded), 500 otherwise.
func writeExecErr(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeErrCode(w, http.StatusGatewayTimeout, CodeDeadlineExceeded,
			fmt.Errorf("query deadline exceeded: %w", err))
	case errors.Is(err, context.Canceled) && r.Context().Err() != nil:
		// Client went away; nothing useful to write.
	default:
		writeErrCode(w, http.StatusInternalServerError, CodeInternal, err)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	faults.Fire(r.Context(), faults.PointHandler, 0)
	compiled, req, ok := s.compile(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.queryContext(r, req)
	defer cancel()
	ans, err := s.sys.ApproxCtx(ctx, s.strategy, compiled.Query)
	if err != nil {
		writeExecErr(w, r, err)
		return
	}
	resp := QueryResponse{
		Columns:   outputNames(compiled),
		RowsRead:  ans.RowsRead,
		ElapsedUS: ans.Elapsed.Microseconds(),
		Degraded:  ans.Degraded,
	}
	if req.Explain && ans.Rewrite != nil {
		resp.Rewrite = ans.Rewrite.SQL()
	}
	for _, g := range compiled.Present(ans.Result) {
		key := engine.EncodeKey(g.Key)
		gj := GroupJSON{Exact: g.Exact}
		for _, v := range g.Key {
			gj.Key = append(gj.Key, strings.Trim(v.String(), "'"))
		}
		for _, o := range compiled.Outputs {
			switch o.Kind {
			case sqlparse.OutAgg:
				gj.Values = append(gj.Values, g.Vals[o.AggIndex])
				iv := ans.Interval(key, o.AggIndex)
				gj.CI = append(gj.CI, [2]float64{iv.Lo, iv.Hi})
			case sqlparse.OutAvg:
				avg := 0.0
				if g.Vals[o.DenIndex] != 0 {
					avg = g.Vals[o.NumIndex] / g.Vals[o.DenIndex]
				}
				gj.Values = append(gj.Values, avg)
				gj.CI = append(gj.CI, [2]float64{avg, avg})
			}
		}
		resp.Groups = append(resp.Groups, gj)
	}
	writeJSON(w, resp)
}

func (s *Server) handleExact(w http.ResponseWriter, r *http.Request) {
	compiled, req, ok := s.compile(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.queryContext(r, req)
	defer cancel()
	res, elapsed, err := s.sys.ExactCtx(ctx, compiled.Query)
	if err != nil {
		writeExecErr(w, r, err)
		return
	}
	// Mirror /query: RowsRead from the engine result and elapsed measured
	// around engine execution only, so the two endpoints' numbers are
	// directly comparable in speedup tables.
	resp := QueryResponse{
		Columns:   outputNames(compiled),
		RowsRead:  res.RowsScanned,
		ElapsedUS: elapsed.Microseconds(),
	}
	for _, g := range compiled.Present(res) {
		gj := GroupJSON{Exact: true}
		for _, v := range g.Key {
			gj.Key = append(gj.Key, strings.Trim(v.String(), "'"))
		}
		for _, o := range compiled.Outputs {
			switch o.Kind {
			case sqlparse.OutAgg:
				gj.Values = append(gj.Values, g.Vals[o.AggIndex])
			case sqlparse.OutAvg:
				avg := 0.0
				if g.Vals[o.DenIndex] != 0 {
					avg = g.Vals[o.NumIndex] / g.Vals[o.DenIndex]
				}
				gj.Values = append(gj.Values, avg)
			}
		}
		resp.Groups = append(resp.Groups, gj)
	}
	writeJSON(w, resp)
}

func (s *Server) handleColumns(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"database": s.sys.DB().Name,
		"rows":     s.sys.DB().NumRows(),
		"columns":  s.sys.DB().Columns(),
	})
}

func (s *Server) handleStrategies(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"strategies": s.sys.Strategies(), "active": s.strategy})
}

func outputNames(c *sqlparse.Compiled) []string {
	var names []string
	for _, o := range c.Outputs {
		names = append(names, o.Name)
	}
	return names
}

// writeJSON encodes v fully before touching the ResponseWriter, so an encode
// failure yields a clean 500 instead of a half-written 200 body with error
// text appended.
func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		writeErrCode(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeErrCode(w, code, "", err)
}

func writeErrCode(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error(), Code: code})
}
