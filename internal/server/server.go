// Package server exposes the AQP middleware over HTTP, matching the
// deployment shape §2 describes for sampling-based systems: "a thin layer of
// middleware which re-writes queries to run against sample tables". Clients
// POST SQL; the server compiles it, answers from the pre-built samples, and
// returns per-group estimates with confidence intervals and exactness flags.
//
// # Concurrency
//
// The handler serves any number of /query, /exact and metadata requests in
// parallel (net/http runs each request on its own goroutine). This is safe
// because the server holds no mutable state: the core.System, its base
// database and every pre-built sample table are immutable once the Server is
// constructed, and all per-request state — the parsed statement, the rewrite
// plan, partial and combined results, response buffers — lives on the
// request's own goroutine. Register all strategies (System.AddStrategy /
// AddPrepared) and set worker budgets (core.WorkerConfigurable) before
// calling Handler; those mutate the shared state and are not synchronised.
//
// Each request may itself fan out: with a worker budget configured
// (SmallGroupConfig.Workers, or the -workers flag of aqpd), one query's
// rewritten UNION ALL steps execute as parallel partitioned scans. See
// ARCHITECTURE.md for the full concurrency model.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/sqlparse"
)

// Server routes HTTP requests to a core.System. Both fields are read-only
// after New, so one Server safely backs concurrent requests.
type Server struct {
	sys      *core.System
	strategy string
}

// New returns a server answering queries with the named registered strategy.
// The system must be fully configured before the returned server starts
// handling requests; see the package comment for the concurrency contract.
func New(sys *core.System, strategy string) *Server {
	return &Server{sys: sys, strategy: strategy}
}

// QueryRequest is the body of POST /query and POST /exact.
type QueryRequest struct {
	SQL string `json:"sql"`
	// Explain additionally returns the rewritten UNION ALL sample query.
	Explain bool `json:"explain,omitempty"`
}

// GroupJSON is one group of an answer.
type GroupJSON struct {
	Key    []string  `json:"key"`
	Values []float64 `json:"values"`
	Exact  bool      `json:"exact"`
	// CI holds [lo, hi] per value; omitted for exact queries.
	CI [][2]float64 `json:"ci,omitempty"`
}

// QueryResponse is the body returned by /query and /exact.
type QueryResponse struct {
	Columns   []string    `json:"columns"`
	Groups    []GroupJSON `json:"groups"`
	RowsRead  int64       `json:"rowsRead,omitempty"`
	ElapsedUS int64       `json:"elapsedMicros"`
	Rewrite   string      `json:"rewrite,omitempty"`
}

// ErrorResponse is returned with non-2xx statuses.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /exact", s.handleExact)
	mux.HandleFunc("GET /columns", s.handleColumns)
	mux.HandleFunc("GET /strategies", s.handleStrategies)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

func (s *Server) compile(w http.ResponseWriter, r *http.Request) (*sqlparse.Compiled, *QueryRequest, bool) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return nil, nil, false
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("empty sql"))
		return nil, nil, false
	}
	stmt, err := sqlparse.Parse(strings.TrimSuffix(strings.TrimSpace(req.SQL), ";"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return nil, nil, false
	}
	compiled, err := sqlparse.Compile(stmt, s.sys.DB())
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return nil, nil, false
	}
	return compiled, &req, true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	compiled, req, ok := s.compile(w, r)
	if !ok {
		return
	}
	ans, err := s.sys.Approx(s.strategy, compiled.Query)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	resp := QueryResponse{
		Columns:   outputNames(compiled),
		RowsRead:  ans.RowsRead,
		ElapsedUS: ans.Elapsed.Microseconds(),
	}
	if req.Explain && ans.Rewrite != nil {
		resp.Rewrite = ans.Rewrite.SQL()
	}
	for _, g := range compiled.Present(ans.Result) {
		key := engine.EncodeKey(g.Key)
		gj := GroupJSON{Exact: g.Exact}
		for _, v := range g.Key {
			gj.Key = append(gj.Key, strings.Trim(v.String(), "'"))
		}
		for _, o := range compiled.Outputs {
			switch o.Kind {
			case sqlparse.OutAgg:
				gj.Values = append(gj.Values, g.Vals[o.AggIndex])
				iv := ans.Interval(key, o.AggIndex)
				gj.CI = append(gj.CI, [2]float64{iv.Lo, iv.Hi})
			case sqlparse.OutAvg:
				avg := 0.0
				if g.Vals[o.DenIndex] != 0 {
					avg = g.Vals[o.NumIndex] / g.Vals[o.DenIndex]
				}
				gj.Values = append(gj.Values, avg)
				gj.CI = append(gj.CI, [2]float64{avg, avg})
			}
		}
		resp.Groups = append(resp.Groups, gj)
	}
	writeJSON(w, resp)
}

func (s *Server) handleExact(w http.ResponseWriter, r *http.Request) {
	compiled, _, ok := s.compile(w, r)
	if !ok {
		return
	}
	start := time.Now()
	res, _, err := s.sys.Exact(compiled.Query)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	resp := QueryResponse{
		Columns:   outputNames(compiled),
		ElapsedUS: time.Since(start).Microseconds(),
	}
	for _, g := range compiled.Present(res) {
		gj := GroupJSON{Exact: true}
		for _, v := range g.Key {
			gj.Key = append(gj.Key, strings.Trim(v.String(), "'"))
		}
		for _, o := range compiled.Outputs {
			switch o.Kind {
			case sqlparse.OutAgg:
				gj.Values = append(gj.Values, g.Vals[o.AggIndex])
			case sqlparse.OutAvg:
				avg := 0.0
				if g.Vals[o.DenIndex] != 0 {
					avg = g.Vals[o.NumIndex] / g.Vals[o.DenIndex]
				}
				gj.Values = append(gj.Values, avg)
			}
		}
		resp.Groups = append(resp.Groups, gj)
	}
	writeJSON(w, resp)
}

func (s *Server) handleColumns(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"database": s.sys.DB().Name,
		"rows":     s.sys.DB().NumRows(),
		"columns":  s.sys.DB().Columns(),
	})
}

func (s *Server) handleStrategies(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"strategies": s.sys.Strategies(), "active": s.strategy})
}

func outputNames(c *sqlparse.Compiled) []string {
	var names []string
	for _, o := range c.Outputs {
		names = append(names, o.Name)
	}
	return names
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error()})
}
