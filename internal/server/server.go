// Package server exposes the AQP middleware over HTTP, matching the
// deployment shape §2 describes for sampling-based systems: "a thin layer of
// middleware which re-writes queries to run against sample tables". Clients
// POST SQL; the server compiles it, answers from the pre-built samples, and
// returns per-group estimates with confidence intervals and exactness flags.
//
// # API surface
//
// The stable client API is versioned under /v1 (POST /v1/query, POST
// /v1/exact, GET /v1/columns, GET /v1/strategies, POST /v1/admin/rebuild);
// the original unversioned paths remain as aliases answering identically.
// Probes (GET /healthz, /readyz), telemetry (GET /metrics in Prometheus
// text format, GET /debug/slowlog) and the error envelope are shared by
// both. Every non-2xx response carries one JSON shape:
//
//	{"error": {"code": "...", "message": "...", "retry_after_ms": 1000}}
//
// with retry_after_ms present only on load-shedding 503s and the best
// achievable bounds present only on bound_unsatisfiable 422s. Every response
// echoes the request's X-Request-ID header (generating one when absent).
// docs/API.md is the complete field-by-field reference for the surface.
//
// # Bounded queries
//
// POST /query accepts error_bound (maximum mean per-group relative error at
// a confidence level) and/or time_bound_ms (maximum predicted execution
// latency). The core planner enumerates candidate sample plans, predicts
// each one's error and latency, and executes the cheapest plan satisfying
// the bounds; the response reports the chosen plan plus predicted and
// achieved error, and an explain trace lists every candidate. Bounds no plan
// can satisfy fail fast with 422 and the best achievable figures. The
// accuracy semantics of these fields are specified in docs/ACCURACY.md.
//
// # Concurrency
//
// The handler serves any number of /query, /exact and metadata requests in
// parallel (net/http runs each request on its own goroutine). This is safe
// because shared state is either immutable, swapped atomically, or
// internally synchronised: the base database and every pre-built sample
// table never change once built, all per-request state — the parsed
// statement, the rewrite plan, partial and combined results, response
// buffers, the query trace — lives on the request's own goroutine (rewrite
// steps record into the trace under its lock), and the registered Prepared
// set sits behind an atomic pointer in core.System. A rebuild (POST
// /admin/rebuild, or AutoRebuild on a timer) pre-processes a fresh sample
// generation in the background, swaps it in with core.SwapPrepared, and
// persists it to the sample catalog; queries in flight during the swap
// finish on the generation they started with. Set worker budgets
// (core.WorkerConfigurable) before calling Handler; that mutation is not
// synchronised.
//
// Each request may itself fan out: with a worker budget configured
// (SmallGroupConfig.Workers, or the -workers flag of aqpd), one query's
// rewritten UNION ALL steps execute as parallel partitioned scans. See
// ARCHITECTURE.md for the full concurrency model.
//
// # Deadlines and overload
//
// Every /query and /exact runs under a context derived from the request: a
// client disconnect, the server's Config.DefaultTimeout, or the request's
// own timeout_ms field cancels in-flight shard scans at the next shard
// boundary. A missed deadline returns 504 with a structured error; under
// deadline pressure the small-group strategy may instead degrade to the
// cheap uniform overall sample and flag "degraded": true. When
// Config.MaxInflight is set, excess concurrent queries are shed immediately
// with 503 + Retry-After rather than queueing unboundedly, and a panicking
// handler is recovered to a 500 without killing the process. See
// ARCHITECTURE.md §6.
//
// # Observability
//
// Runtime metrics live in the process-wide obs registry and are served at
// GET /metrics; every query carries an obs.Trace through the pipeline
// (parse → select → execute → combine → finalize → present) which an
// "explain": true request returns inline and GET /debug/slowlog retains for
// the slowest queries. See ARCHITECTURE.md §8.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/faults"
	"dynsample/internal/ingest"
	"dynsample/internal/obs"
	"dynsample/internal/sqlparse"
)

// DefaultStrategy is the strategy a zero-value Config serves.
const DefaultStrategy = "smallgroup"

// Config tunes the server. The zero value serves the DefaultStrategy with
// permissive robustness defaults: no deadline, no admission limit, a
// DefaultSlowLogSize slow-query log.
type Config struct {
	// Strategy is the registered strategy name /query answers with. Empty
	// means DefaultStrategy.
	Strategy string
	// DefaultTimeout bounds each /query and /exact unless the request
	// carries its own timeout_ms. Zero means no default deadline.
	DefaultTimeout time.Duration
	// MaxInflight caps concurrently executing /query + /exact requests;
	// excess requests are shed with 503 and a Retry-After header instead of
	// queueing. Zero means unlimited.
	MaxInflight int
	// RetryAfter is the Retry-After hint on shed requests; zero means 1s.
	RetryAfter time.Duration
	// SlowLogSize is how many of the slowest queries GET /debug/slowlog
	// retains. Zero means obs.DefaultSlowLogSize.
	SlowLogSize int
	// Rebuild enables zero-downtime sample rebuilds (/admin/rebuild and
	// AutoRebuild); the zero value disables them. See RebuildConfig.
	Rebuild RebuildConfig
	// Ingest, when non-nil, enables POST /ingest (live row appends backed by
	// the coordinator's WAL + online sample maintenance) and makes Rebuild go
	// through the coordinator's pin/tail handshake. When Rebuild is also
	// configured, the coordinator's drift trigger is pointed at this server's
	// background rebuild.
	Ingest *ingest.Coordinator
	// Shards > 0 puts the server in cluster shard mode: it serves one
	// partition of the fact table (stripe ShardID of Shards) and additionally
	// exposes GET /shard, the join summary a cluster coordinator fetches to
	// register this shard (see internal/cluster). ShardID must then be in
	// [0, Shards).
	Shards  int
	ShardID int
}

// Server routes HTTP requests to a core.System. Configuration fields are
// read-only after construction; the mutable state — the atomically swapped
// Prepared set inside core.System, the healthState atomics, the slow-query
// log — is synchronised, so one Server safely backs concurrent requests
// even while a rebuild swaps sample generations underneath them.
type Server struct {
	sys      *core.System
	strategy string
	cfg      Config
	inflight chan struct{} // admission semaphore; nil = unlimited
	slowlog  *obs.SlowLog
	health   healthState
	shard    shardSummary // generation-keyed GET /shard cache (shard mode)
}

// New returns a server over sys. The zero Config is valid: it serves the
// DefaultStrategy with no deadline and no admission limit. The system must
// be fully configured before the returned server starts handling requests;
// see the package comment for the concurrency contract.
func New(sys *core.System, cfg Config) *Server {
	if cfg.Strategy == "" {
		cfg.Strategy = DefaultStrategy
	}
	s := &Server{
		sys:      sys,
		strategy: cfg.Strategy,
		cfg:      cfg,
		slowlog:  obs.NewSlowLog(cfg.SlowLogSize),
	}
	if cfg.MaxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	if cfg.Ingest != nil && cfg.Rebuild.Strategy != nil {
		// Drift past the bound means some rare value has outgrown its exact
		// small-group answer; rebuild in the background while ingest and
		// queries continue (the coordinator fires this at most once per
		// rebuild cycle, on its own goroutine).
		cfg.Ingest.SetOnDrift(func(float64) {
			if _, err := s.Rebuild(); err != nil {
				log.Printf("server: drift-triggered rebuild failed: %v", err)
			}
		})
	}
	return s
}

// SlowLog exposes the server's slow-query log (the store behind GET
// /debug/slowlog), so an operator CLI can mount it elsewhere.
func (s *Server) SlowLog() *obs.SlowLog { return s.slowlog }

// QueryRequest is the body of POST /query and POST /exact. See docs/API.md
// for the full field reference.
type QueryRequest struct {
	SQL string `json:"sql"`
	// Explain additionally returns the rewritten UNION ALL sample query and
	// the full pipeline trace (per-stage timings, the selected sample set
	// with per-table cost, sampling fraction, degradation, and — on bounded
	// queries — the planner's candidate list).
	Explain bool `json:"explain,omitempty"`
	// TimeoutMS, when present, overrides the server's default per-request
	// deadline for this query; it must be positive. A missed deadline
	// returns 504.
	TimeoutMS *int64 `json:"timeout_ms,omitempty"`
	// ErrorBound, when set, asks the planner for the cheapest plan whose
	// predicted mean per-group relative error (at the confidence level) is
	// at most this value, in (0, 1). /query only. When no plan qualifies the
	// request fails with 422 and the best achievable bound in the error
	// body. See docs/ACCURACY.md for what the prediction guarantees.
	ErrorBound float64 `json:"error_bound,omitempty"`
	// TimeBoundMS, when set, bounds the plan's predicted execution latency
	// in milliseconds; the planner picks the most accurate plan predicted to
	// fit (the cheapest satisfying plan when error_bound is also set).
	// /query only. Unlike timeout_ms it shapes the plan rather than
	// cancelling the request.
	TimeBoundMS int64 `json:"time_bound_ms,omitempty"`
	// Confidence is the confidence level error_bound and the returned
	// intervals are stated at, in (0, 1). Zero means the server's configured
	// level (default 0.95). Requires error_bound or time_bound_ms.
	Confidence float64 `json:"confidence,omitempty"`
	// Raw asks for the answer as raw merge-ready accumulators
	// (RawQueryResponse wrapping engine.ResultWire) instead of presented
	// groups. This is the shard-side wire format of the scatter-gather tier:
	// the coordinator needs every additive accumulator to re-merge shard
	// partials with Result.Merge, which the presented groups do not carry.
	Raw bool `json:"raw,omitempty"`
}

// bounded reports whether the request asks for planner bounds.
func (q *QueryRequest) bounded() bool {
	return q.ErrorBound != 0 || q.TimeBoundMS != 0 || q.Confidence != 0
}

// GroupJSON is one group of an answer.
type GroupJSON struct {
	Key    []string  `json:"key"`
	Values []float64 `json:"values"`
	Exact  bool      `json:"exact"`
	// CI holds [lo, hi] per value; omitted for exact queries.
	CI [][2]float64 `json:"ci,omitempty"`
}

// QueryResponse is the body returned by /query and /exact.
type QueryResponse struct {
	Columns   []string    `json:"columns"`
	Groups    []GroupJSON `json:"groups"`
	RowsRead  int64       `json:"rowsRead,omitempty"`
	ElapsedUS int64       `json:"elapsedMicros"`
	// Generation is the data generation (ingest batches applied) this answer
	// was computed against, so clients can correlate an answer with their
	// own writes.
	Generation uint64 `json:"generation"`
	Rewrite    string `json:"rewrite,omitempty"`
	// Degraded is set when deadline pressure made the strategy fall back to
	// the uniform overall sample instead of its full rewrite.
	Degraded bool `json:"degraded,omitempty"`
	// Plan names the planner-chosen sample plan; set on bounded queries.
	Plan string `json:"plan,omitempty"`
	// Predicted is the planner's predicted mean per-group relative error for
	// the chosen plan; set on bounded queries.
	Predicted *float64 `json:"predicted,omitempty"`
	// Achieved is the realized error estimate, derived from the answer's
	// confidence intervals; set on bounded queries.
	Achieved *float64 `json:"achieved,omitempty"`
	// Partial is set by a cluster coordinator when one or more shards did
	// not contribute to this answer; the estimates cover only the surviving
	// shards and Predicted/Achieved are widened accordingly. Single-process
	// servers never set it.
	Partial bool `json:"partial,omitempty"`
	// MissingShards lists the shard ids that did not contribute when Partial
	// is set.
	MissingShards []int `json:"missing_shards,omitempty"`
	// Trace is the pipeline trace, returned when the request set
	// "explain": true.
	Trace *obs.TraceData `json:"trace,omitempty"`
}

// ErrorDetail is the payload of the error envelope: a stable
// machine-readable code, human-readable detail, and — on load shedding —
// the retry hint mirrored from the Retry-After header.
type ErrorDetail struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	// BestErrorBound, on bound_unsatisfiable errors, is the smallest
	// error_bound any plan could have satisfied under the request's time
	// bound — the value to retry with.
	BestErrorBound *float64 `json:"best_error_bound,omitempty"`
	// BestTimeBoundMS, on bound_unsatisfiable errors, is the smallest
	// time_bound_ms any plan could have satisfied under the request's error
	// bound.
	BestTimeBoundMS *int64 `json:"best_time_bound_ms,omitempty"`
}

// ErrorResponse is the one JSON shape every non-2xx response carries:
// {"error":{"code":..., "message":..., "retry_after_ms":...}}.
type ErrorResponse struct {
	Error ErrorDetail `json:"error"`
}

// Error codes used in ErrorDetail.Code.
const (
	CodeBadRequest         = "bad_request"
	CodeNotFound           = "not_found"
	CodeDeadlineExceeded   = "deadline_exceeded"
	CodeOverloaded         = "overloaded"
	CodeInternal           = "internal"
	CodeUnimplemented      = "unimplemented"
	CodeBoundUnsatisfiable = "bound_unsatisfiable"
	// CodeIngestDegraded marks ingest refused because a disk fault put the
	// WAL into read-only degraded mode; the request is retryable (503 +
	// Retry-After) and ingest self-recovers once the disk heals.
	CodeIngestDegraded = "ingest_degraded"
)

// Handler returns the HTTP routes — the /v1 surface plus the legacy
// unversioned aliases — wrapped in the request-ID and panic-recovery
// middleware; /query and /exact additionally pass through admission
// control.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Versioned + legacy alias registration: both paths share one handler,
	// so the pairs cannot drift apart.
	versioned := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, h)
		method, path, _ := strings.Cut(pattern, " ")
		mux.HandleFunc(method+" /v1"+path, h)
	}
	versioned("POST /query", s.admit("query", s.handleQuery))
	versioned("POST /exact", s.admit("exact", s.handleExact))
	versioned("GET /columns", s.handleColumns)
	versioned("GET /strategies", s.handleStrategies)
	versioned("POST /admin/rebuild", s.handleRebuild)
	versioned("POST /ingest", s.handleIngest)
	if s.cfg.Shards > 0 {
		versioned("GET /shard", s.handleShard)
	}
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("GET /metrics", obs.Handler(obs.Default()))
	mux.HandleFunc("GET /debug/slowlog", s.handleSlowlog)
	// Catch-all so unknown paths get the error envelope, not a plain-text
	// 404.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, CodeNotFound,
			fmt.Errorf("no route for %s %s", r.Method, r.URL.Path))
	})
	return requestID(recoverPanics(mux))
}

// requestID accepts the client's X-Request-ID (or generates one), echoes it
// on the response, and threads it through the context so traces, slow-log
// entries and panic logs can correlate with client-side logs.
func requestID(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeRequestID(r.Header.Get("X-Request-ID"))
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		h.ServeHTTP(w, r.WithContext(obs.WithRequestID(r.Context(), id)))
	})
}

// sanitizeRequestID bounds a client-supplied identifier: printable ASCII
// only, at most 128 bytes, so a hostile header cannot inject into logs or
// response headers.
func sanitizeRequestID(id string) string {
	if len(id) > 128 {
		id = id[:128]
	}
	for i := 0; i < len(id); i++ {
		if id[i] < 0x20 || id[i] > 0x7e {
			return ""
		}
	}
	return id
}

// recoverPanics converts a panic on the request goroutine into a 500 so one
// poisoned request cannot take down the process; the panic is counted and
// logged with the request ID. If the handler had already written a response
// prefix the error body is appended to it — the client sees a malformed
// payload, which is the best that can be done post-commit.
func recoverPanics(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				obsPanics.Inc()
				log.Printf("server: recovered panic (request_id=%s %s %s): %v",
					obs.RequestIDFrom(r.Context()), r.Method, r.URL.Path, v)
				writeError(w, http.StatusInternalServerError, CodeInternal,
					fmt.Errorf("internal error: recovered panic: %v", v))
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// admit applies the MaxInflight admission semaphore: requests beyond the cap
// are shed immediately with 503 + Retry-After (load shedding beats unbounded
// queueing — queued requests would miss their deadlines anyway and drag down
// admitted ones). Admitted requests are counted by the in-flight gauge.
func (s *Server) admit(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.inflight != nil {
			select {
			case s.inflight <- struct{}{}:
				defer func() { <-s.inflight }()
			default:
				s.shed(w, endpoint)
				return
			}
		}
		obsInflight.Add(1)
		defer obsInflight.Add(-1)
		h(w, r)
	}
}

// shed rejects one request at the admission gate with 503 + Retry-After.
func (s *Server) shed(w http.ResponseWriter, endpoint string) {
	obsShed.Inc()
	obsQueries.With(endpoint, s.strategy, "shed").Inc()
	secs := retryAfterSecs(s.cfg.RetryAfter, time.Second)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeErrorRetry(w, http.StatusServiceUnavailable, CodeOverloaded, int64(secs)*1000,
		fmt.Errorf("server at max in-flight queries (%d); retry after %ds", s.cfg.MaxInflight, secs))
}

// retryAfterSecs converts a configured Retry-After hint (falling back when
// unset) to whole seconds and adds jitter in [secs, 2·secs]. Without jitter
// every client rejected in the same overload spike retries in the same
// second and re-creates the spike; the spread halves the synchronized
// retry rate at the cost of at most doubling one client's wait.
func retryAfterSecs(configured, fallback time.Duration) int {
	retry := configured
	if retry <= 0 {
		retry = fallback
	}
	secs := int(retry.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs + rand.Intn(secs+1)
}

// reqTrack carries the observability record of one /query or /exact request
// from first byte to response: the pipeline trace plus the terminal status
// and row accounting the metrics and slow log need.
type reqTrack struct {
	s        *Server
	endpoint string
	start    time.Time
	trace    *obs.Trace
	status   string
	rowsRead int64
}

// begin starts tracking one request. The trace is attached to the execution
// context by the handler so every pipeline layer below records into it.
func (s *Server) begin(r *http.Request, endpoint string) *reqTrack {
	rt := &reqTrack{
		s:        s,
		endpoint: endpoint,
		start:    time.Now(),
		trace:    obs.NewTrace(obs.RequestIDFrom(r.Context()), ""),
		status:   "internal",
	}
	return rt
}

// finish closes the trace with the terminal status, records the request's
// metrics, offers the query to the slow log, and returns the completed
// trace snapshot for an explain response. Call exactly once per request.
func (rt *reqTrack) finish() obs.TraceData {
	data := rt.trace.Finish(rt.status)
	elapsed := time.Since(rt.start)
	obsQueries.With(rt.endpoint, rt.s.strategy, rt.status).Inc()
	obsLatency.With(rt.endpoint).Observe(elapsed.Seconds())
	if rt.rowsRead > 0 {
		obsRowsScanned.With(rt.endpoint).Add(uint64(rt.rowsRead))
	}
	if rt.status == "timeout" {
		obsTimeouts.Inc()
	}
	if data.SQL != "" { // never log requests that failed before decoding
		rt.s.slowlog.Observe(obs.SlowLogEntry{
			Time:      rt.start,
			RequestID: data.RequestID,
			SQL:       data.SQL,
			Status:    rt.status,
			Micros:    data.TotalMicros,
			Trace:     data,
		})
	}
	return data
}

func (s *Server) compile(rt *reqTrack, w http.ResponseWriter, r *http.Request) (*sqlparse.Compiled, *QueryRequest, bool) {
	endStage := rt.trace.StartStage("parse")
	defer endStage()
	bad := func(err error) (*sqlparse.Compiled, *QueryRequest, bool) {
		rt.status = "bad_request"
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return nil, nil, false
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return bad(fmt.Errorf("bad request body: %w", err))
	}
	rt.trace.SetSQL(req.SQL)
	if req.TimeoutMS != nil && *req.TimeoutMS <= 0 {
		return bad(fmt.Errorf("invalid timeout_ms %d: must be > 0", *req.TimeoutMS))
	}
	if req.ErrorBound < 0 || req.ErrorBound >= 1 {
		return bad(fmt.Errorf("invalid error_bound %g: must be in (0, 1)", req.ErrorBound))
	}
	if req.TimeBoundMS < 0 {
		return bad(fmt.Errorf("invalid time_bound_ms %d: must be > 0", req.TimeBoundMS))
	}
	if req.Confidence < 0 || req.Confidence >= 1 {
		return bad(fmt.Errorf("invalid confidence %g: must be in (0, 1)", req.Confidence))
	}
	if req.Confidence != 0 && req.ErrorBound == 0 && req.TimeBoundMS == 0 {
		return bad(fmt.Errorf("confidence requires error_bound or time_bound_ms"))
	}
	if strings.TrimSpace(req.SQL) == "" {
		return bad(fmt.Errorf("empty sql"))
	}
	stmt, err := sqlparse.Parse(strings.TrimSuffix(strings.TrimSpace(req.SQL), ";"))
	if err != nil {
		return bad(err)
	}
	compiled, err := sqlparse.Compile(stmt, s.sys.DB())
	if err != nil {
		return bad(err)
	}
	return compiled, &req, true
}

// queryContext derives the execution context for one request: the request's
// own context (cancelled when the client disconnects) bounded by timeout_ms
// if given, else by the server default.
func (s *Server) queryContext(r *http.Request, req *QueryRequest) (context.Context, context.CancelFunc) {
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS != nil {
		timeout = time.Duration(*req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		return context.WithTimeout(r.Context(), timeout)
	}
	return r.Context(), func() {}
}

// writeExecErr maps an execution error to a status: 504 for a missed
// deadline, nothing at all for a vanished client (the connection is gone;
// any body would be discarded), 500 otherwise. It returns the terminal
// status label for the request's metrics.
func writeExecErr(w http.ResponseWriter, r *http.Request, err error) (status string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, CodeDeadlineExceeded,
			fmt.Errorf("query deadline exceeded: %w", err))
		return "timeout"
	case errors.Is(err, context.Canceled) && r.Context().Err() != nil:
		// Client went away; nothing useful to write.
		return "canceled"
	default:
		writeError(w, http.StatusInternalServerError, CodeInternal, err)
		return "error"
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	faults.Fire(r.Context(), faults.PointHandler, 0)
	if s.cfg.Shards > 0 {
		faults.Fire(r.Context(), faults.PointShardRequest, s.cfg.ShardID)
	}
	rt := s.begin(r, "query")
	rt.trace.SetStrategy(s.strategy)
	compiled, req, ok := s.compile(rt, w, r)
	if !ok {
		rt.finish()
		return
	}
	ctx, cancel := s.queryContext(r, req)
	defer cancel()
	// Read the generation before executing: the answer is then guaranteed to
	// include at least every batch up to it.
	gen := s.sys.DataGeneration()
	bounds := core.Bounds{
		ErrorBound: req.ErrorBound,
		TimeBound:  time.Duration(req.TimeBoundMS) * time.Millisecond,
		Confidence: req.Confidence,
	}
	ans, err := s.sys.ApproxBoundsCtx(obs.WithTrace(ctx, rt.trace), s.strategy, compiled.Query, bounds)
	if err != nil {
		var unsat *core.UnsatisfiableBoundsError
		if errors.As(err, &unsat) {
			rt.status = "unsatisfiable"
			writeUnsatisfiable(w, unsat)
		} else {
			rt.status = writeExecErr(w, r, err)
		}
		rt.finish()
		return
	}
	if req.Raw {
		raw := RawQueryResponse{
			Result:     ans.Result.Wire(),
			RowsRead:   ans.RowsRead,
			ElapsedUS:  ans.Elapsed.Microseconds(),
			Generation: gen,
			Degraded:   ans.Degraded,
		}
		if d := ans.Plan; d != nil {
			predicted, achieved := d.Chosen.PredictedError, d.AchievedError
			raw.Plan = d.Chosen.Name
			raw.Predicted, raw.Achieved = &predicted, &achieved
		}
		rt.status, rt.rowsRead = "ok", ans.RowsRead
		rt.finish()
		s.writeShardJSON(w, raw)
		return
	}
	endStage := rt.trace.StartStage("present")
	resp := QueryResponse{
		Columns:    outputNames(compiled),
		RowsRead:   ans.RowsRead,
		ElapsedUS:  ans.Elapsed.Microseconds(),
		Generation: gen,
		Degraded:   ans.Degraded,
	}
	for _, g := range compiled.Present(ans.Result) {
		key := engine.EncodeKey(g.Key)
		gj := GroupJSON{Exact: g.Exact}
		for _, v := range g.Key {
			gj.Key = append(gj.Key, strings.Trim(v.String(), "'"))
		}
		for _, o := range compiled.Outputs {
			switch o.Kind {
			case sqlparse.OutAgg:
				gj.Values = append(gj.Values, g.Vals[o.AggIndex])
				iv := ans.Interval(key, o.AggIndex)
				gj.CI = append(gj.CI, [2]float64{iv.Lo, iv.Hi})
			case sqlparse.OutAvg:
				avg := 0.0
				if g.Vals[o.DenIndex] != 0 {
					avg = g.Vals[o.NumIndex] / g.Vals[o.DenIndex]
				}
				gj.Values = append(gj.Values, avg)
				gj.CI = append(gj.CI, [2]float64{avg, avg})
			}
		}
		resp.Groups = append(resp.Groups, gj)
	}
	if d := ans.Plan; d != nil {
		resp.Plan = d.Chosen.Name
		predicted, achieved := d.Chosen.PredictedError, d.AchievedError
		resp.Predicted, resp.Achieved = &predicted, &achieved
	}
	endStage()
	rt.status, rt.rowsRead = "ok", ans.RowsRead
	trace := rt.finish()
	if req.Explain {
		if ans.Rewrite != nil {
			resp.Rewrite = ans.Rewrite.SQL()
		}
		resp.Trace = &trace
	}
	writeJSON(w, resp)
}

// writeUnsatisfiable emits the 422 envelope for bounds no plan can satisfy,
// carrying the best achievable figures so the client can retry realistically.
func writeUnsatisfiable(w http.ResponseWriter, unsat *core.UnsatisfiableBoundsError) {
	bestErr := unsat.BestError
	bestMS := (unsat.BestLatency + time.Millisecond - 1) / time.Millisecond
	bestMSv := int64(bestMS)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusUnprocessableEntity)
	json.NewEncoder(w).Encode(ErrorResponse{Error: ErrorDetail{
		Code:            CodeBoundUnsatisfiable,
		Message:         unsat.Error(),
		BestErrorBound:  &bestErr,
		BestTimeBoundMS: &bestMSv,
	}})
}

func (s *Server) handleExact(w http.ResponseWriter, r *http.Request) {
	rt := s.begin(r, "exact")
	rt.trace.SetStrategy("exact")
	compiled, req, ok := s.compile(rt, w, r)
	if !ok {
		rt.finish()
		return
	}
	if req.bounded() {
		rt.status = "bad_request"
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("error_bound/time_bound_ms/confidence apply to /query only; /exact always scans the base table"))
		rt.finish()
		return
	}
	ctx, cancel := s.queryContext(r, req)
	defer cancel()
	gen := s.sys.DataGeneration()
	endStage := rt.trace.StartStage("execute")
	res, elapsed, err := s.sys.ExactCtx(ctx, compiled.Query)
	endStage()
	if err != nil {
		rt.status = writeExecErr(w, r, err)
		rt.finish()
		return
	}
	if req.Raw {
		raw := RawQueryResponse{
			Result:     res.Wire(),
			RowsRead:   res.RowsScanned,
			ElapsedUS:  elapsed.Microseconds(),
			Generation: gen,
		}
		rt.status, rt.rowsRead = "ok", res.RowsScanned
		rt.trace.SetRowsRead(res.RowsScanned)
		rt.finish()
		s.writeShardJSON(w, raw)
		return
	}
	// Mirror /query: RowsRead from the engine result and elapsed measured
	// around engine execution only, so the two endpoints' numbers are
	// directly comparable in speedup tables.
	endStage = rt.trace.StartStage("present")
	resp := QueryResponse{
		Columns:    outputNames(compiled),
		RowsRead:   res.RowsScanned,
		ElapsedUS:  elapsed.Microseconds(),
		Generation: gen,
	}
	for _, g := range compiled.Present(res) {
		gj := GroupJSON{Exact: true}
		for _, v := range g.Key {
			gj.Key = append(gj.Key, strings.Trim(v.String(), "'"))
		}
		for _, o := range compiled.Outputs {
			switch o.Kind {
			case sqlparse.OutAgg:
				gj.Values = append(gj.Values, g.Vals[o.AggIndex])
			case sqlparse.OutAvg:
				avg := 0.0
				if g.Vals[o.DenIndex] != 0 {
					avg = g.Vals[o.NumIndex] / g.Vals[o.DenIndex]
				}
				gj.Values = append(gj.Values, avg)
			}
		}
		resp.Groups = append(resp.Groups, gj)
	}
	endStage()
	rt.status, rt.rowsRead = "ok", res.RowsScanned
	rt.trace.SetRowsRead(res.RowsScanned)
	trace := rt.finish()
	if req.Explain {
		resp.Trace = &trace
	}
	writeJSON(w, resp)
}

func (s *Server) handleColumns(w http.ResponseWriter, _ *http.Request) {
	db := s.sys.DB()
	// Types let ingest clients (aqpcli ingest) encode CSV cells correctly
	// without guessing whether "123" is a string or a number.
	types := map[string]string{}
	for _, name := range db.Columns() {
		if t, err := db.ColumnType(name); err == nil {
			types[name] = t.String()
		}
	}
	writeJSON(w, map[string]any{
		"database": db.Name,
		"rows":     db.NumRows(),
		"columns":  db.Columns(),
		"types":    types,
	})
}

func (s *Server) handleStrategies(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"strategies": s.sys.Strategies(), "active": s.strategy})
}

// SlowLogResponse is the body of GET /debug/slowlog.
type SlowLogResponse struct {
	// Capacity is how many entries the log retains.
	Capacity int `json:"capacity"`
	// Entries are the slowest queries seen so far, slowest first, each with
	// its full pipeline trace.
	Entries []obs.SlowLogEntry `json:"entries"`
}

func (s *Server) handleSlowlog(w http.ResponseWriter, _ *http.Request) {
	entries := s.slowlog.Slowest()
	if entries == nil {
		entries = []obs.SlowLogEntry{}
	}
	writeJSON(w, SlowLogResponse{Capacity: s.slowlog.Size(), Entries: entries})
}

func outputNames(c *sqlparse.Compiled) []string {
	var names []string
	for _, o := range c.Outputs {
		names = append(names, o.Name)
	}
	return names
}

// writeJSON encodes v fully before touching the ResponseWriter, so an encode
// failure yields a clean 500 instead of a half-written 200 body with error
// text appended.
func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

// writeError emits the error envelope with the given status and code.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeErrorRetry(w, status, code, 0, err)
}

func writeErrorRetry(w http.ResponseWriter, status int, code string, retryAfterMS int64, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorResponse{Error: ErrorDetail{
		Code:         code,
		Message:      err.Error(),
		RetryAfterMS: retryAfterMS,
	}})
}
