package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
)

// Fire many concurrent /query and /exact requests at one server and require
// (a) every request succeeds and (b) every client sees the same answer —
// the per-request state isolation the package documents, checked under the
// race detector by `go test -race ./...` (the Makefile `check` target).
func TestConcurrentQueryStress(t *testing.T) {
	srv := testServer(t)
	const clients = 32
	const perClient = 4

	fetch := func(path, sql string) (int, string, error) {
		b, _ := json.Marshal(QueryRequest{SQL: sql})
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), err
	}

	queries := []struct{ path, sql string }{
		{"/query", "SELECT region, COUNT(*) FROM T GROUP BY region"},
		{"/query", "SELECT region, SUM(amount) FROM T GROUP BY region"},
		{"/exact", "SELECT region, COUNT(*) FROM T GROUP BY region"},
	}

	// Reference responses, fetched serially first. Groups and values are
	// deterministic; elapsed time and rowsRead are not compared directly.
	type norm struct {
		Columns []string    `json:"columns"`
		Groups  []GroupJSON `json:"groups"`
	}
	normalize := func(body string) string {
		var n norm
		if err := json.Unmarshal([]byte(body), &n); err != nil {
			t.Fatalf("bad response %q: %v", body, err)
		}
		out, _ := json.Marshal(n)
		return string(out)
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		code, body, err := fetch(q.path, q.sql)
		if err != nil || code != http.StatusOK {
			t.Fatalf("reference %s: code=%d err=%v", q.sql, code, err)
		}
		want[i] = normalize(body)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				qi := (c + r) % len(queries)
				code, body, err := fetch(queries[qi].path, queries[qi].sql)
				if err != nil {
					errs <- err
					return
				}
				if code != http.StatusOK {
					t.Errorf("client %d: status %d: %s", c, code, body)
					return
				}
				if got := normalize(body); got != want[qi] {
					t.Errorf("client %d: response diverged for %q:\n got %s\nwant %s",
						c, queries[qi].sql, got, want[qi])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
