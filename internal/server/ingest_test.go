package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dynsample/internal/core"
	"dynsample/internal/faults"
	"dynsample/internal/ingest"
)

// ingestServer builds the full live-ingestion stack: the shared sales
// fixture, a WAL in a temp dir, a coordinator, and a server with rebuilds
// configured so the drift trigger has something to fire.
func ingestServer(t *testing.T, icfg ingest.Config) (*httptest.Server, *ingest.Coordinator, *core.System) {
	t.Helper()
	// DistinctLimit must exceed the fixture's ~540 distinct regions or the
	// column gets no small group table (τ cutoff) and nothing to maintain.
	sgCfg := core.SmallGroupConfig{BaseRate: 0.05, SmallGroupFraction: 0.05, DistinctLimit: 2000, Seed: 1}
	sys := testSystem(t, sgCfg)
	w, err := ingest.OpenWAL(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	if icfg.Online.SmallGroupFraction == 0 {
		icfg.Online.SmallGroupFraction = sgCfg.SmallGroupFraction
	}
	coord, err := ingest.New(sys, w, icfg)
	if err != nil {
		t.Fatal(err)
	}
	sgCfg.Seed = 1
	s := New(sys, Config{
		Ingest:  coord,
		Rebuild: RebuildConfig{Strategy: core.NewSmallGroup(sgCfg)},
	})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv, coord, sys
}

func TestIngestEndpoint(t *testing.T) {
	srv, _, _ := ingestServer(t, ingest.Config{Online: core.OnlineConfig{Seed: 3}})

	resp, body := post(t, srv, "/v1/ingest", IngestRequest{
		Columns: []string{"region", "amount"},
		Rows: [][]json.RawMessage{
			{json.RawMessage(`"zz"`), json.RawMessage(`10.5`)},
			{json.RawMessage(`"zz"`), json.RawMessage(`4.5`)},
			{json.RawMessage(`"ra"`), json.RawMessage(`1`)},
		},
		BatchID: "b-1",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ir IngestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Rows != 3 || ir.Generation != 1 || ir.Duplicate {
		t.Fatalf("response = %+v, want 3 rows at generation 1", ir)
	}

	// The ingested rows are queryable immediately, and the answer reports
	// the generation it covers. "zz" is brand new, so it is outside the
	// common set and must be exact.
	resp, body = post(t, srv, "/v1/query", QueryRequest{
		SQL: "SELECT region, COUNT(*), SUM(amount) FROM T GROUP BY region",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Generation != 1 {
		t.Errorf("query generation = %d, want 1", qr.Generation)
	}
	found := false
	for _, g := range qr.Groups {
		if g.Key[0] == "zz" {
			found = true
			if !g.Exact {
				t.Error("new rare group zz not exact")
			}
			if g.Values[0] != 2 || g.Values[1] != 15 {
				t.Errorf("zz = %v, want [2 15]", g.Values)
			}
		}
	}
	if !found {
		t.Error("ingested group zz missing from query answer")
	}

	// /v1/exact sees the appended base rows too and reports the generation.
	resp, body = post(t, srv, "/v1/exact", QueryRequest{
		SQL: "SELECT COUNT(*) FROM T WHERE region = 'zz'",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact status %d: %s", resp.StatusCode, body)
	}
	qr = QueryResponse{}
	json.Unmarshal(body, &qr)
	if qr.Generation != 1 || len(qr.Groups) != 1 || qr.Groups[0].Values[0] != 2 {
		t.Errorf("exact answer %+v, want 2 zz rows at generation 1", qr)
	}

	// Retrying the same batch id must not append again.
	resp, body = post(t, srv, "/v1/ingest", IngestRequest{
		Rows:    [][]json.RawMessage{{json.RawMessage(`"zz"`), json.RawMessage(`10.5`)}},
		BatchID: "b-1",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate status %d: %s", resp.StatusCode, body)
	}
	ir = IngestResponse{}
	json.Unmarshal(body, &ir)
	if !ir.Duplicate || ir.Generation != 1 || ir.Rows != 3 {
		t.Fatalf("duplicate response = %+v, want original stats flagged duplicate", ir)
	}
}

func TestIngestRequestIDIdempotency(t *testing.T) {
	srv, coord, _ := ingestServer(t, ingest.Config{Online: core.OnlineConfig{Seed: 4}})
	send := func() IngestResponse {
		b, _ := json.Marshal(IngestRequest{
			Rows: [][]json.RawMessage{{json.RawMessage(`"qq"`), json.RawMessage(`1.0`)}},
		})
		req, _ := http.NewRequest("POST", srv.URL+"/v1/ingest", bytes.NewReader(b))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-ID", "retry-77")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var ir IngestResponse
		json.NewDecoder(resp.Body).Decode(&ir)
		return ir
	}
	if ir := send(); ir.Duplicate {
		t.Fatal("first send flagged duplicate")
	}
	if ir := send(); !ir.Duplicate {
		t.Fatal("X-Request-ID retry not deduplicated")
	}
	if g := coord.Generation(); g != 1 {
		t.Fatalf("generation = %d, want 1", g)
	}
}

func TestIngestBadRequests(t *testing.T) {
	srv, _, _ := ingestServer(t, ingest.Config{Online: core.OnlineConfig{Seed: 5}})
	cases := []struct {
		name string
		body IngestRequest
	}{
		{"empty", IngestRequest{}},
		{"short row", IngestRequest{Rows: [][]json.RawMessage{{json.RawMessage(`"x"`)}}}},
		{"wrong type", IngestRequest{Rows: [][]json.RawMessage{{json.RawMessage(`7`), json.RawMessage(`1.0`)}}}},
		{"non-number amount", IngestRequest{Rows: [][]json.RawMessage{{json.RawMessage(`"x"`), json.RawMessage(`"ten"`)}}}},
		{"columns mismatch", IngestRequest{
			Columns: []string{"amount", "region"},
			Rows:    [][]json.RawMessage{{json.RawMessage(`"x"`), json.RawMessage(`1.0`)}},
		}},
	}
	for _, tc := range cases {
		resp, body := post(t, srv, "/v1/ingest", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, body)
		}
	}
}

// TestIngestWALFailureDegrades: a WAL fsync failure is the server's fault,
// not the request's — it latches read-only degraded mode and surfaces as a
// retryable 503 with Retry-After (so clients keep the batch and retry) rather
// than 400 or a permanent 500, and once the disk heals a probe restores
// ingest without a restart.
func TestIngestWALFailureDegrades(t *testing.T) {
	srv, coord, _ := ingestServer(t, ingest.Config{
		Online:       core.OnlineConfig{Seed: 6},
		ProbeBackoff: time.Hour, // drive recovery via ProbeNow, not the background loop
	})
	faults.SetErr(faults.PointWALSync, faults.FailNth(0, errors.New("disk full")))
	t.Cleanup(faults.Reset)
	req := IngestRequest{
		Rows: [][]json.RawMessage{{json.RawMessage(`"zz"`), json.RawMessage(`1.5`)}},
	}
	resp, body := post(t, srv, "/v1/ingest", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503 for a WAL failure", resp.StatusCode, body)
	}
	if er := decodeErr(t, body); er.Error.Code != CodeIngestDegraded {
		t.Fatalf("code %q, want %q", er.Error.Code, CodeIngestDegraded)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 is missing a Retry-After header")
	}
	faults.Reset()
	if err := coord.ProbeNow(); err != nil {
		t.Fatalf("probe after the fault cleared: %v", err)
	}
	resp, body = post(t, srv, "/v1/ingest", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after the fault cleared: %d (%s)", resp.StatusCode, body)
	}
}

func TestIngestNotConfigured(t *testing.T) {
	srv := testServer(t)
	resp, body := post(t, srv, "/v1/ingest", IngestRequest{
		Rows: [][]json.RawMessage{{json.RawMessage(`"x"`), json.RawMessage(`1.0`)}},
	})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status %d (%s), want 501", resp.StatusCode, body)
	}
}

// TestIngestDriftTriggersRebuild is the drift acceptance test: stream a
// brand-new heavy value through the HTTP surface until it crosses the t·|T|
// threshold, and require the drift gauge to flip, exactly one background
// rebuild to run, and every query issued meanwhile to succeed.
func TestIngestDriftTriggersRebuild(t *testing.T) {
	srv, coord, _ := ingestServer(t, ingest.Config{
		Online:     core.OnlineConfig{Seed: 6},
		DriftBound: 1.0,
	})

	hot := func(n int) [][]json.RawMessage {
		rows := make([][]json.RawMessage, n)
		for i := range rows {
			rows[i] = []json.RawMessage{json.RawMessage(`"hh"`), json.RawMessage(`2.0`)}
		}
		return rows
	}
	crossed := false
	for i := 0; i < 40 && !crossed; i++ {
		resp, body := post(t, srv, "/v1/ingest", IngestRequest{Rows: hot(200)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
		}
		var ir IngestResponse
		json.Unmarshal(body, &ir)
		crossed = ir.Drift >= 1
		// Queries must keep succeeding while drift builds and the rebuild
		// runs in the background.
		qresp, qbody := post(t, srv, "/v1/query", QueryRequest{
			SQL: "SELECT region, COUNT(*) FROM T GROUP BY region",
		})
		if qresp.StatusCode != http.StatusOK {
			t.Fatalf("query failed during drift buildup: %d %s", qresp.StatusCode, qbody)
		}
	}
	if !crossed {
		t.Fatal("drift never crossed the bound")
	}

	// The background rebuild resets the gauge (hh is common after the
	// rebuild re-derives the metadata).
	deadline := time.Now().Add(10 * time.Second)
	for coord.Drift() >= 1 {
		if time.Now().After(deadline) {
			t.Fatal("drift-triggered rebuild never completed")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Exactly one rebuild: the server health generation moved 0 -> 1.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	json.NewDecoder(resp.Body).Decode(&h)
	if h.Generation != 1 {
		t.Fatalf("health generation = %d after drift, want exactly 1 rebuild", h.Generation)
	}
	if h.LastRebuildError != "" {
		t.Fatalf("rebuild error: %s", h.LastRebuildError)
	}

	// And the rebuilt samples answer for the new value without exactness
	// loss elsewhere.
	qresp, qbody := post(t, srv, "/v1/query", QueryRequest{
		SQL: "SELECT COUNT(*) FROM T WHERE region = 'hh'",
	})
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("post-rebuild query: %d %s", qresp.StatusCode, qbody)
	}
}
