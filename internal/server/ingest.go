package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"dynsample/internal/engine"
	"dynsample/internal/ingest"
)

// maxIngestBody bounds one POST /ingest request body; a batch larger than
// this should be split client-side (the WAL caps records at 16 MiB anyway).
const maxIngestBody = 8 << 20

// IngestRequest is the body of POST /ingest: rows in the base view's column
// order (see GET /columns). BatchID (or, when absent, the client's
// X-Request-ID header) makes the request idempotent: retrying the same id
// within the server's idempotency window returns the original outcome
// instead of appending the rows twice.
type IngestRequest struct {
	// Columns, when present, must name the view columns in the exact order
	// the rows use. It exists so clients can assert their ordering
	// assumption; it does not reorder anything.
	Columns []string `json:"columns,omitempty"`
	// Rows are the values to append, one array per row, typed as the view
	// columns are (JSON strings for string columns, numbers for int and
	// float columns; int cells must be integral).
	Rows [][]json.RawMessage `json:"rows"`
	// BatchID is the idempotency key; empty falls back to the X-Request-ID
	// header.
	BatchID string `json:"batch_id,omitempty"`
}

// IngestResponse is the body of POST /ingest.
type IngestResponse struct {
	// Rows is how many rows the acknowledged batch appended.
	Rows int `json:"rows"`
	// Generation is the data generation after this batch (ingest batches
	// applied since startup); query responses echo the generation they
	// answered from.
	Generation uint64 `json:"generation"`
	// Duplicate is true when this batch id was already applied; the other
	// fields report the original application.
	Duplicate bool `json:"duplicate,omitempty"`
	// ReservoirSwaps and SmallGroupInserts report the batch's sample
	// maintenance effects (how many overall-sample slots it replaced, how
	// many rows went into small group tables).
	ReservoirSwaps    int `json:"reservoirSwaps"`
	SmallGroupInserts int `json:"smallGroupInserts"`
	// Drift is the common-set drift gauge after this batch; the server
	// schedules a background rebuild when it crosses the configured bound.
	Drift float64 `json:"drift"`
}

// handleIngest implements POST /ingest: decode + type-check the rows against
// the view schema, hand them to the coordinator (WAL append + online sample
// maintenance), and report the batch's effect. Overload maps to 503 +
// Retry-After like query shedding; duplicates are a 200 with the original
// stats so retries are safe; WAL and apply failures are 500s so clients
// don't mistake a server fault for a bad batch.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	ing := s.cfg.Ingest
	if ing == nil {
		writeError(w, http.StatusNotImplemented, CodeUnimplemented,
			errors.New("ingestion not configured (start the server with -wal-dir)"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxIngestBody)
	var req IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	cols := s.sys.DB().Columns()
	if req.Columns != nil {
		if len(req.Columns) != len(cols) {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("columns has %d names, view has %d (%v)", len(req.Columns), len(cols), cols))
			return
		}
		for i, name := range req.Columns {
			if name != cols[i] {
				writeError(w, http.StatusBadRequest, CodeBadRequest,
					fmt.Errorf("columns[%d] = %q, view order is %v", i, name, cols))
				return
			}
		}
	}
	rows, err := s.decodeIngestRows(cols, req.Rows)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	id := req.BatchID
	if id == "" {
		id = sanitizeRequestID(r.Header.Get("X-Request-ID"))
	}
	st, err := ing.Ingest(id, rows)
	switch {
	case errors.Is(err, ingest.ErrDuplicate):
		writeJSON(w, IngestResponse{
			Rows:              st.Rows,
			Generation:        st.DataGeneration,
			Duplicate:         true,
			ReservoirSwaps:    st.ReservoirSwaps,
			SmallGroupInserts: st.SmallGroupInserts,
			Drift:             st.Drift,
		})
	case errors.Is(err, ingest.ErrOverloaded):
		secs := retryAfterSecs(s.cfg.RetryAfter, time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeErrorRetry(w, http.StatusServiceUnavailable, CodeOverloaded, int64(secs)*1000, err)
	case errors.Is(err, ingest.ErrDegraded):
		// A disk fault put ingest into read-only mode. Queries still serve
		// and the coordinator is re-probing the disk on its own, so this is
		// a retryable 503, not a 500: keep the batch and try again.
		secs := retryAfterSecs(s.cfg.RetryAfter, 5*time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeErrorRetry(w, http.StatusServiceUnavailable, CodeIngestDegraded, int64(secs)*1000, err)
	case errors.Is(err, ingest.ErrUnavailable):
		// A server-side failure (WAL write/fsync, or a durably logged batch
		// that did not apply) — not the client's fault, so never 400: a
		// well-behaved client should keep the batch and retry later.
		writeError(w, http.StatusInternalServerError, CodeInternal, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
	default:
		writeJSON(w, IngestResponse{
			Rows:              st.Rows,
			Generation:        st.DataGeneration,
			ReservoirSwaps:    st.ReservoirSwaps,
			SmallGroupInserts: st.SmallGroupInserts,
			Drift:             st.Drift,
		})
	}
}

// decodeIngestRows converts JSON cells to typed engine values against the
// view schema. Numbers are parsed via json.Number so int columns reject both
// strings and non-integral numbers instead of silently truncating.
func (s *Server) decodeIngestRows(cols []string, raw [][]json.RawMessage) ([][]engine.Value, error) {
	if len(raw) == 0 {
		return nil, errors.New("empty batch: rows is required")
	}
	types := make([]engine.Type, len(cols))
	for i, name := range cols {
		t, err := s.sys.DB().ColumnType(name)
		if err != nil {
			return nil, err
		}
		types[i] = t
	}
	rows := make([][]engine.Value, len(raw))
	for ri, cells := range raw {
		if len(cells) != len(cols) {
			return nil, fmt.Errorf("rows[%d] has %d values, view has %d columns (%v)", ri, len(cells), len(cols), cols)
		}
		row := make([]engine.Value, len(cells))
		for ci, cell := range cells {
			v, err := decodeCell(types[ci], cell)
			if err != nil {
				return nil, fmt.Errorf("rows[%d][%d] (column %q): %w", ri, ci, cols[ci], err)
			}
			row[ci] = v
		}
		rows[ri] = row
	}
	return rows, nil
}

func decodeCell(t engine.Type, cell json.RawMessage) (engine.Value, error) {
	switch t {
	case engine.String:
		var s string
		if err := json.Unmarshal(cell, &s); err != nil {
			return engine.Value{}, fmt.Errorf("want a JSON string, got %s", cell)
		}
		return engine.StringVal(s), nil
	case engine.Int:
		var n json.Number
		if err := json.Unmarshal(cell, &n); err != nil {
			return engine.Value{}, fmt.Errorf("want a JSON integer, got %s", cell)
		}
		i, err := n.Int64()
		if err != nil {
			return engine.Value{}, fmt.Errorf("want an integer, got %s", n)
		}
		return engine.IntVal(i), nil
	case engine.Float:
		var n json.Number
		if err := json.Unmarshal(cell, &n); err != nil {
			return engine.Value{}, fmt.Errorf("want a JSON number, got %s", cell)
		}
		f, err := n.Float64()
		if err != nil {
			return engine.Value{}, err
		}
		return engine.FloatVal(f), nil
	default:
		return engine.Value{}, fmt.Errorf("unsupported column type %v", t)
	}
}
