package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/faults"
)

// shardServer boots the fixture system in shard mode (slot 1 of 4).
func shardServer(t *testing.T) *httptest.Server {
	t.Helper()
	sys := testSystem(t, core.SmallGroupConfig{Workers: 2})
	srv := httptest.NewServer(New(sys, Config{Shards: 4, ShardID: 1}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestRawQueryResponse(t *testing.T) {
	srv := shardServer(t)
	resp, body := post(t, srv, "/v1/query", QueryRequest{
		SQL: "SELECT region, COUNT(*), SUM(amount) FROM T GROUP BY region",
		Raw: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var raw RawQueryResponse
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	res, err := engine.ResultFromWire(raw.Result)
	if err != nil {
		t.Fatalf("raw result does not decode: %v", err)
	}
	if res.NumGroups() == 0 {
		t.Fatal("raw result has no groups")
	}
	if len(res.GroupBy) != 1 || res.GroupBy[0] != "region" {
		t.Errorf("raw groupBy = %v", res.GroupBy)
	}
	if len(res.Aggs) != 2 {
		t.Errorf("raw aggs = %v", res.Aggs)
	}
	// The raw accumulators must be merge-ready: every estimated group needs
	// variance state for the coordinator to rebuild intervals.
	sawVar := false
	for _, g := range res.Groups() {
		if !g.Exact {
			for _, v := range g.VarAcc {
				if v > 0 {
					sawVar = true
				}
			}
		}
		if g.RawRows <= 0 {
			t.Errorf("group %v has no raw row count", g.Key)
		}
	}
	if !sawVar {
		t.Error("no variance accumulators survived the wire")
	}
}

func TestRawExactResponse(t *testing.T) {
	srv := shardServer(t)
	resp, body := post(t, srv, "/v1/exact", QueryRequest{
		SQL: "SELECT region, COUNT(*) FROM T GROUP BY region",
		Raw: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var raw RawQueryResponse
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	res, err := engine.ResultFromWire(raw.Result)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, g := range res.Groups() {
		total += g.Vals[0]
	}
	if total != 20000 {
		t.Errorf("exact raw COUNT total = %v, want 20000", total)
	}
}

func TestShardSummaryEndpoint(t *testing.T) {
	srv := shardServer(t)
	get := func() *core.ShardStats {
		resp, err := http.Get(srv.URL + "/v1/shard")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/shard status %d", resp.StatusCode)
		}
		var st core.ShardStats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return &st
	}
	st := get()
	if st.ShardID != 1 || st.Shards != 4 {
		t.Errorf("shard slot = %d/%d, want 1/4", st.ShardID, st.Shards)
	}
	if st.Rows != 20000 || st.SampleRows <= 0 || st.ScanRowsPerSecond <= 0 {
		t.Errorf("summary = %+v", st)
	}
	if _, ok := st.Columns["region"]; !ok {
		t.Error("region column not summarised")
	}
	// Second fetch at the same generation must serve the cache (same values).
	st2 := get()
	if st2.Generation != st.Generation || st2.Rows != st.Rows {
		t.Errorf("cached summary differs: %+v vs %+v", st2, st)
	}
}

func TestShardEndpointAbsentOutsideShardMode(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/shard")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/shard outside shard mode = %d, want 404", resp.StatusCode)
	}
}

// TestShardBodyCutTruncatesResponse proves the byte-truncation fault is
// observable client-side as an unexpected EOF mid-body, which is what the
// coordinator's decoder must treat as a transient shard failure.
func TestShardBodyCutTruncatesResponse(t *testing.T) {
	srv := shardServer(t)
	t.Cleanup(faults.Reset)
	faults.SetCut(faults.PointShardBody, faults.CutAfter(0, 10))
	resp, body := post(t, srv, "/v1/query", QueryRequest{
		SQL: "SELECT region, COUNT(*) FROM T GROUP BY region",
		Raw: true,
	})
	resp.Body.Close()
	var raw RawQueryResponse
	err := json.Unmarshal(body, &raw)
	if err == nil && raw.Result != nil {
		t.Fatal("truncated body still decoded to a full raw response")
	}
}

// TestRetryAfterJitter is the satellite regression test: shed 503s must
// spread their Retry-After over [secs, 2·secs] rather than synchronizing
// every rejected client on the same second.
func TestRetryAfterJitter(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		secs := retryAfterSecs(time.Second, time.Second)
		if secs < 1 || secs > 2 {
			t.Fatalf("retryAfterSecs(1s) = %d, want in [1, 2]", secs)
		}
		seen[secs] = true
	}
	if !seen[1] || !seen[2] {
		t.Errorf("no jitter: saw %v, want both 1 and 2 over 200 draws", seen)
	}
	// Fallback path when unconfigured.
	for i := 0; i < 50; i++ {
		if secs := retryAfterSecs(0, 4*time.Second); secs < 4 || secs > 8 {
			t.Fatalf("retryAfterSecs(0, 4s) = %d, want in [4, 8]", secs)
		}
	}
}

// TestShedRetryAfterHeaderJittered drives the real admission gate and
// checks the emitted header stays within the jitter envelope and matches
// the body's retry_after_ms.
func TestShedRetryAfterHeaderJittered(t *testing.T) {
	sys := testSystem(t, core.SmallGroupConfig{})
	blocked := New(sys, Config{MaxInflight: 1, RetryAfter: 2 * time.Second})
	// Fill the only admission slot so the next request sheds.
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	held := make(chan struct{})
	go blocked.admit("query", func(w http.ResponseWriter, r *http.Request) {
		close(held)
		<-release
	})(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/query", nil))
	<-held
	rec := httptest.NewRecorder()
	blocked.admit("query", func(http.ResponseWriter, *http.Request) {
		t.Error("shed request reached the handler")
	})(rec, httptest.NewRequest(http.MethodPost, "/query", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	var er ErrorResponse
	if err := json.NewDecoder(rec.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	ra := rec.Header().Get("Retry-After")
	if ra != "2" && ra != "3" && ra != "4" {
		t.Errorf("Retry-After = %q, want within [2, 4]", ra)
	}
	if er.Error.RetryAfterMS < 2000 || er.Error.RetryAfterMS > 4000 {
		t.Errorf("retry_after_ms = %d, want within [2000, 4000]", er.Error.RetryAfterMS)
	}
}
