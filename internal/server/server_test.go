package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dynsample/internal/core"
	"dynsample/internal/engine"
	"dynsample/internal/randx"
)

// testSystem builds the shared fixture: a skewed sales table with small
// group sampling pre-processed. cfg tweaks are applied over the base config.
func testSystem(t testing.TB, cfg core.SmallGroupConfig) *core.System {
	t.Helper()
	region := engine.NewColumn("region", engine.String)
	amount := engine.NewColumn("amount", engine.Float)
	fact := engine.NewTable("sales", region, amount)
	rng := randx.New(31)
	zi := randx.NewZipf(1.5, 40)
	for i := 0; i < 20000; i++ {
		region.AppendString("r" + string(rune('a'+zi.Draw(rng)%26)) + string(rune('a'+zi.Draw(rng)%26)))
		amount.AppendFloat(rng.Float64() * 100)
		fact.EndRow()
	}
	db := engine.MustNewDatabase("salesdb", fact)
	sys := core.NewSystem(db)
	if cfg.BaseRate == 0 {
		cfg.BaseRate = 0.05
	}
	cfg.Seed = 1
	if err := sys.AddStrategy(core.NewSmallGroup(cfg)); err != nil {
		t.Fatal(err)
	}
	return sys
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	// Workers > 1 so every request exercises the parallel execution layer
	// (step fan-out + partitioned scans) — especially under -race.
	sys := testSystem(t, core.SmallGroupConfig{Workers: 4})
	srv := httptest.NewServer(New(sys, Config{}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func post(t *testing.T, srv *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestQueryEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, body := post(t, srv, "/query", QueryRequest{
		SQL:     "SELECT region, COUNT(*), AVG(amount) FROM T GROUP BY region",
		Explain: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Columns) != 3 || qr.Columns[0] != "region" {
		t.Errorf("columns = %v", qr.Columns)
	}
	if len(qr.Groups) == 0 {
		t.Fatal("no groups")
	}
	sawExact := false
	for _, g := range qr.Groups {
		if len(g.Key) != 1 || len(g.Values) != 2 || len(g.CI) != 2 {
			t.Fatalf("group shape wrong: %+v", g)
		}
		if g.CI[0][0] > g.Values[0] || g.CI[0][1] < g.Values[0] {
			t.Errorf("CI %v excludes estimate %g", g.CI[0], g.Values[0])
		}
		if g.Exact {
			sawExact = true
			if g.CI[0][0] != g.CI[0][1] {
				t.Errorf("exact group with nonzero CI width: %v", g.CI[0])
			}
		}
	}
	if !sawExact {
		t.Error("no exact groups on skewed data")
	}
	if !strings.Contains(qr.Rewrite, "UNION ALL") {
		t.Errorf("explain did not return the rewrite: %q", qr.Rewrite)
	}
	if qr.RowsRead <= 0 {
		t.Errorf("rowsRead = %d", qr.RowsRead)
	}
}

func TestExactEndpointAgreesOnExactGroups(t *testing.T) {
	srv := testServer(t)
	q := QueryRequest{SQL: "SELECT region, COUNT(*) FROM T GROUP BY region"}
	_, approxBody := post(t, srv, "/query", q)
	_, exactBody := post(t, srv, "/exact", q)
	var approx, exact QueryResponse
	json.Unmarshal(approxBody, &approx)
	json.Unmarshal(exactBody, &exact)
	exactByKey := map[string]float64{}
	for _, g := range exact.Groups {
		exactByKey[g.Key[0]] = g.Values[0]
	}
	for _, g := range approx.Groups {
		if g.Exact && exactByKey[g.Key[0]] != g.Values[0] {
			t.Errorf("exact-flagged group %s: %g vs truth %g", g.Key[0], g.Values[0], exactByKey[g.Key[0]])
		}
	}
}

func TestBadRequests(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		path string
		body string
	}{
		{"/query", `{`},
		{"/query", `{"sql": ""}`},
		{"/query", `{"sql": "SELEC nonsense"}`},
		{"/query", `{"sql": "SELECT COUNT(*) FROM T WHERE missing = 1"}`},
		{"/exact", `{"sql": "not sql"}`},
	}
	for _, c := range cases {
		resp, err := http.Post(srv.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %q: status %d, want 400", c.path, c.body, resp.StatusCode)
		}
	}
}

func TestMetaEndpoints(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/columns")
	if err != nil {
		t.Fatal(err)
	}
	var cols struct {
		Database string   `json:"database"`
		Rows     int      `json:"rows"`
		Columns  []string `json:"columns"`
	}
	json.NewDecoder(resp.Body).Decode(&cols)
	resp.Body.Close()
	if cols.Database != "salesdb" || cols.Rows != 20000 || len(cols.Columns) != 2 {
		t.Errorf("columns response: %+v", cols)
	}

	resp, err = http.Get(srv.URL + "/strategies")
	if err != nil {
		t.Fatal(err)
	}
	var strat struct {
		Strategies []string `json:"strategies"`
		Active     string   `json:"active"`
	}
	json.NewDecoder(resp.Body).Decode(&strat)
	resp.Body.Close()
	if strat.Active != "smallgroup" || len(strat.Strategies) != 1 {
		t.Errorf("strategies response: %+v", strat)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

func TestMethodRouting(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed && resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /query status %d", resp.StatusCode)
	}
}

func TestQueryOrderByAndLimit(t *testing.T) {
	srv := testServer(t)
	resp, body := post(t, srv, "/query", QueryRequest{
		SQL: "SELECT region, COUNT(*) AS cnt FROM T GROUP BY region ORDER BY cnt DESC LIMIT 3",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Groups) != 3 {
		t.Fatalf("groups = %d, want 3 (LIMIT)", len(qr.Groups))
	}
	for i := 1; i < len(qr.Groups); i++ {
		if qr.Groups[i].Values[0] > qr.Groups[i-1].Values[0] {
			t.Errorf("not sorted descending: %v then %v", qr.Groups[i-1].Values[0], qr.Groups[i].Values[0])
		}
	}
}
