package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// Serve runs srv on ln until ctx is cancelled, then shuts down gracefully:
// the listener closes immediately (no new connections) while in-flight
// requests get up to drain to finish (http.Server.Shutdown). It returns nil
// after a clean drain, ctx's cause if the drain timed out, or the serve
// error if the server failed before ctx was cancelled.
//
// Requests keep their own contexts during the drain — a SIGTERM must not
// cancel work the server is about to finish — so the per-request deadlines
// of Config.DefaultTimeout/timeout_ms are what bound the drain in practice,
// with the drain budget as the backstop.
func Serve(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx := context.Background()
	if drain > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(sctx, drain)
		defer cancel()
	}
	err := srv.Shutdown(sctx)
	// Serve returns ErrServerClosed once Shutdown begins; collect it so the
	// goroutine never leaks, and surface any other error.
	if serr := <-errc; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
		err = serr
	}
	return err
}
