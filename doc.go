// Package dynsample reproduces "Dynamic Sample Selection for Approximate
// Query Processing" (Babcock, Chaudhuri, Das — SIGMOD 2003): an AQP
// middleware that pre-builds a family of differently biased samples and, for
// each query, dynamically assembles the subset that answers it best.
//
// The implementation lives under internal/: see internal/core for the
// dynamic sample selection architecture and small group sampling,
// internal/engine for the columnar star-schema execution engine, and
// internal/experiments for the harness that regenerates every table and
// figure of the paper. Entry points: cmd/experiments, cmd/aqpcli,
// cmd/datagen, and the runnable programs under examples/.
package dynsample
