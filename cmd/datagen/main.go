// Command datagen emits the synthetic experiment databases as CSV for
// inspection or use by external tools.
//
// Usage:
//
//	datagen -db tpch -sf 1 -z 2.0 -out /tmp/tpch     # one CSV per table
//	datagen -db sales -rows 80000 -out /tmp/sales
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dynsample/internal/datagen"
	"dynsample/internal/engine"
)

func main() {
	var (
		db   = flag.String("db", "tpch", "database to generate: tpch or sales")
		sf   = flag.Float64("sf", 1, "TPC-H scale factor")
		z    = flag.Float64("z", 2.0, "Zipf skew parameter")
		rows = flag.Int("rows", 0, "row override (tpch: rows per SF; sales: fact rows)")
		out  = flag.String("out", ".", "output directory")
		seed = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	var (
		d   *engine.Database
		err error
	)
	switch *db {
	case "tpch":
		d, err = datagen.TPCH(datagen.TPCHConfig{ScaleFactor: *sf, Zipf: *z, RowsPerSF: *rows, Seed: *seed})
	case "sales":
		d, err = datagen.Sales(datagen.SalesConfig{FactRows: *rows, Zipf: *z, Seed: *seed})
	default:
		err = fmt.Errorf("unknown database %q", *db)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	write := func(t *engine.Table) error {
		path := filepath.Join(*out, t.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := engine.WriteCSV(t, f); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d rows, %d columns)\n", path, t.NumRows(), t.NumCols())
		return nil
	}

	if err := write(d.Fact); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	for _, dim := range d.Dims {
		if err := write(dim.Table); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
	}
}
