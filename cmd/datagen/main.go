// Command datagen emits synthetic experiment databases as CSV for
// inspection or use by external tools. Databases are described by scenario
// spec files (see internal/scenario); the two schemas used throughout the
// experiments ship as builtin specs.
//
// Usage:
//
//	datagen -db tpch -out /tmp/tpch              # builtin spec, one CSV per table
//	datagen -db sales -rows 20000 -out /tmp/sales
//	datagen -spec scenarios/cases/geo_correlated/spec.json -out /tmp/geo
//	datagen -list                                # show builtin spec names
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dynsample/internal/engine"
	"dynsample/internal/scenario"
)

func main() {
	var (
		db       = flag.String("db", "", "builtin database spec to generate (see -list)")
		specPath = flag.String("spec", "", "path to a scenario spec file (overrides -db)")
		rows     = flag.Int("rows", 0, "fact table row-count override")
		seed     = flag.Int64("seed", 0, "random seed override (0 keeps the spec's seed)")
		out      = flag.String("out", ".", "output directory")
		list     = flag.Bool("list", false, "list builtin spec names and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range scenario.BuiltinSpecs() {
			fmt.Println(name)
		}
		return
	}

	spec, err := loadSpec(*specPath, *db)
	if err != nil {
		fail(err)
	}
	if *rows > 0 {
		ft := spec.FactTable()
		if ft == nil {
			fail(fmt.Errorf("spec %s has no fact table to apply -rows to", spec.Name))
		}
		ft.Rows = *rows
	}
	if *seed != 0 {
		spec.Seed = *seed
	}

	d, err := scenario.Generate(spec)
	if err != nil {
		fail(err)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	write := func(t *engine.Table) error {
		path := filepath.Join(*out, t.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := engine.WriteCSV(t, f); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d rows, %d columns)\n", path, t.NumRows(), t.NumCols())
		return nil
	}

	if err := write(d.Fact); err != nil {
		fail(err)
	}
	for _, dim := range d.Dims {
		if err := write(dim.Table); err != nil {
			fail(err)
		}
	}
}

func loadSpec(specPath, db string) (*scenario.Spec, error) {
	switch {
	case specPath != "":
		return scenario.LoadSpec(specPath)
	case db != "":
		return scenario.BuiltinSpec(db)
	default:
		return nil, fmt.Errorf("one of -db or -spec is required (builtins: %v)", scenario.BuiltinSpecs())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
