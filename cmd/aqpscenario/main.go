// Command aqpscenario runs the declarative scenario suite: for each case
// directory (a data spec plus a check declaration, see scenarios/README.md)
// it generates the database, builds the small-group samples, starts a live
// HTTP server, replays the declared query workload against /v1/query and
// /v1/exact, and writes one SCENARIO_<case>.json verdict with every
// accuracy/throughput/resource gate evaluated.
//
// Usage:
//
//	aqpscenario -cases scenarios/cases -out .          # full sweep
//	aqpscenario -cases scenarios/cases -case uniform_smoke -out /tmp
//
// The exit code is 0 only when every executed case passes its gates.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dynsample/internal/scenario"
)

func main() {
	var (
		cases   = flag.String("cases", "scenarios/cases", "directory of case directories")
		one     = flag.String("case", "", "run only this case (directory base name)")
		out     = flag.String("out", ".", "directory verdict files are written to")
		verbose = flag.Bool("v", false, "log per-case progress")
	)
	flag.Parse()

	opts := scenario.RunOptions{OutDir: *out}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	var verdicts []*scenario.Verdict
	var err error
	if *one != "" {
		var v *scenario.Verdict
		v, err = scenario.RunDir(filepath.Join(*cases, *one), opts)
		if v != nil {
			verdicts = append(verdicts, v)
		}
	} else {
		verdicts, err = scenario.RunAll(*cases, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aqpscenario:", err)
		os.Exit(1)
	}

	failed := 0
	fmt.Printf("%-18s %8s %9s %9s %10s %11s %8s  %s\n",
		"CASE", "QUERIES", "RELERR", "PREDICTED", "VIOLATIONS", "QPS", "BUILD", "VERDICT")
	for _, v := range verdicts {
		verdict := "PASS"
		if !v.Pass {
			verdict = "FAIL"
			failed++
			for _, g := range v.Gates {
				if !g.Pass {
					verdict += fmt.Sprintf(" [%s %.4g vs %.4g]", g.Name, g.Value, g.Limit)
				}
			}
		}
		fmt.Printf("%-18s %8d %9.4f %9.4f %6d/%-3d %11.1f %7dms  %s\n",
			v.Case, v.Queries, v.MeanRelErr, v.MeanPredicted,
			v.Violations, v.Queries, v.QPS, v.BuildMS, verdict)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "aqpscenario: %d/%d cases failed\n", failed, len(verdicts))
		os.Exit(1)
	}
}
