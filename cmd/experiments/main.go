// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -fig 4            # one experiment (3a 3b 4 5 6 7 8 9 sum prep gamma tau baselines levels bounds)
//	experiments -all              # everything, in paper order
//	experiments -all -quick       # reduced scale for a fast smoke run
//
// Output is ASCII tables with one row per x-axis point and one column per
// method, plus notes quoting the paper's reference values.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dynsample/internal/experiments"
)

func main() {
	var (
		fig     = flag.String("fig", "", "experiment id to run (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiment ids")
		quick   = flag.Bool("quick", false, "reduced scale (~10x faster)")
		queries = flag.Int("queries", 0, "queries per configuration (default 20)")
		seed    = flag.Int64("seed", 42, "random seed")
		outdir  = flag.String("outdir", "", "also write each figure as CSV into this directory")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), " "))
		return
	}
	if !*all && *fig == "" {
		fmt.Fprintln(os.Stderr, "usage: experiments -fig <id> | -all   (use -list for ids)")
		os.Exit(2)
	}

	sc := experiments.Scale{Seed: *seed, QueriesPerConfig: *queries}
	if *quick {
		sc.TPCHSF1Rows = 20000
		sc.TPCHSF5Rows = 50000
		sc.SalesRows = 10000
		sc.BaseRate = 0.02
		if sc.QueriesPerConfig == 0 {
			sc.QueriesPerConfig = 8
		}
	}
	r := experiments.NewRunner(sc)

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	run := func(id string) {
		start := time.Now()
		figs, err := r.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, f := range figs {
			f.Render(os.Stdout)
			if *outdir != "" {
				path := filepath.Join(*outdir, f.FileName())
				out, err := os.Create(path)
				if err == nil {
					err = f.WriteCSV(out)
					out.Close()
				}
				if err != nil {
					fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", path, err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("  [experiment %s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *all {
		for _, id := range experiments.IDs() {
			run(id)
		}
		return
	}
	run(*fig)
}
