package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dynsample/internal/cluster"
	"dynsample/internal/server"
)

// coordinatorConfig carries the -coordinator flag group from main.
type coordinatorConfig struct {
	addr             string
	shardAddrs       string
	shardTimeout     time.Duration
	shardRetries     int
	hedgeAfter       time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
	drainTimeout     time.Duration
}

// runCoordinator is aqpd's -coordinator mode: no local data, no
// pre-processing — just the scatter-gather tier over the configured shards.
// Shards that are down at startup are admitted later by the breakers'
// half-open probe loop (or immediately via POST /v1/admin/probe), so the
// coordinator never refuses to start because of a dead shard.
func runCoordinator(cfg coordinatorConfig) {
	var addrs []string
	for _, a := range strings.Split(cfg.shardAddrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fatal(fmt.Errorf("-coordinator needs -shard-addrs (comma-separated shard base URLs, in shard-id order)"))
	}
	co, err := cluster.New(cluster.Config{
		ShardAddrs:       addrs,
		DefaultTimeout:   cfg.shardTimeout,
		Retries:          cfg.shardRetries,
		HedgeAfterMin:    cfg.hedgeAfter,
		BreakerThreshold: cfg.breakerThreshold,
		ProbeBackoff:     cfg.breakerCooldown,
	})
	if err != nil {
		fatal(err)
	}
	defer co.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	joinCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	joined := co.Join(joinCtx)
	cancel()
	if joined < len(addrs) {
		fmt.Fprintf(os.Stderr, "aqpd: coordinator joined %d of %d shards; the rest are probed in the background\n",
			joined, len(addrs))
	} else {
		fmt.Fprintf(os.Stderr, "aqpd: coordinator joined all %d shards\n", joined)
	}

	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           co.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      writeTimeoutFor(cfg.shardTimeout),
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "aqpd coordinator listening on %s (%d shards)\n", ln.Addr(), len(addrs))
	err = server.Serve(ctx, srv, ln, cfg.drainTimeout)
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "aqpd: signal received, draining in-flight requests...")
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "aqpd: coordinator shutdown complete")
}
