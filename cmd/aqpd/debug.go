package main

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"

	"dynsample/internal/obs"
	"dynsample/internal/server"
)

// serveDebug runs the opt-in debug listener (-debug-addr): pprof profiles,
// a second /metrics endpoint, and the slow-query log. It lives on its own
// address so profiling and scraping can be firewalled away from the query
// port, and its handlers are registered explicitly — nothing here touches
// http.DefaultServeMux, so the import of net/http/pprof cannot leak
// profiling endpoints onto the main listener.
func serveDebug(ln net.Listener, websrv *server.Server) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /metrics", obs.Handler(obs.Default()))
	mux.HandleFunc("GET /debug/slowlog", func(w http.ResponseWriter, _ *http.Request) {
		// Same store and response shape as the main listener's
		// /debug/slowlog, via the server's SlowLog accessor.
		sl := websrv.SlowLog()
		entries := sl.Slowest()
		if entries == nil {
			entries = []obs.SlowLogEntry{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(server.SlowLogResponse{Capacity: sl.Size(), Entries: entries})
	})
	// Profiling is best-effort; if the listener dies the query port is
	// unaffected.
	http.Serve(ln, mux)
}
