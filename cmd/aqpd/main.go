// Command aqpd serves the AQP middleware over HTTP: generate (or restore) a
// database, run pre-processing once, then answer SQL aggregation queries
// from the samples.
//
// Usage:
//
//	aqpd -db tpch -z 2.0 -rows 200000 -rate 0.01 -addr :8080
//	curl -s localhost:8080/query -d '{"sql":"SELECT s_region, COUNT(*) FROM T GROUP BY s_region"}'
//	curl -s localhost:8080/exact -d '{"sql":"SELECT s_region, COUNT(*) FROM T GROUP BY s_region"}'
//	curl -s localhost:8080/columns
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"dynsample/internal/core"
	"dynsample/internal/datagen"
	"dynsample/internal/engine"
	"dynsample/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dbKind  = flag.String("db", "tpch", "database: tpch or sales")
		z       = flag.Float64("z", 2.0, "Zipf skew")
		rows    = flag.Int("rows", 200000, "fact rows")
		rate    = flag.Float64("rate", 0.01, "base sampling rate r")
		seed    = flag.Int64("seed", 42, "random seed")
		restore = flag.String("restore", "", "load a pre-processed sample set (see aqpcli -save)")
	)
	flag.Parse()

	fmt.Fprintf(os.Stderr, "generating %s database (%d rows)...\n", *dbKind, *rows)
	var (
		db  *engine.Database
		err error
	)
	switch *dbKind {
	case "tpch":
		db, err = datagen.TPCH(datagen.TPCHConfig{ScaleFactor: 1, Zipf: *z, RowsPerSF: *rows, Seed: *seed})
	case "sales":
		db, err = datagen.Sales(datagen.SalesConfig{FactRows: *rows, Zipf: *z, Seed: *seed})
	default:
		err = fmt.Errorf("unknown database %q", *dbKind)
	}
	if err != nil {
		fatal(err)
	}

	sys := core.NewSystem(db)
	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			fatal(err)
		}
		p, err := core.LoadSmallGroup(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		sys.AddPrepared("smallgroup", p)
		fmt.Fprintf(os.Stderr, "restored sample set from %s\n", *restore)
	} else {
		start := time.Now()
		if err := sys.AddStrategy(core.NewSmallGroup(core.SmallGroupConfig{BaseRate: *rate, Seed: *seed})); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pre-processing done in %v\n", time.Since(start).Round(time.Millisecond))
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(sys, "smallgroup").Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Fprintf(os.Stderr, "aqpd listening on %s\n", *addr)
	if err := srv.ListenAndServe(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aqpd:", err)
	os.Exit(1)
}
