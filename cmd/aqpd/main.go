// Command aqpd serves the AQP middleware over HTTP: generate (or restore) a
// database, run pre-processing once, then answer SQL aggregation queries
// from the samples. The server handles concurrent /query requests; -workers
// additionally parallelises each query's rewritten UNION ALL over
// partitioned scans (and pre-processing itself).
//
// Usage:
//
//	aqpd -db tpch -z 2.0 -rows 200000 -rate 0.01 -workers 8 -addr :8080
//	curl -s localhost:8080/query -d '{"sql":"SELECT s_region, COUNT(*) FROM T GROUP BY s_region"}'
//	curl -s localhost:8080/exact -d '{"sql":"SELECT s_region, COUNT(*) FROM T GROUP BY s_region"}'
//	curl -s localhost:8080/columns
//
// Flags are validated before the database is generated, so a bad value fails
// in milliseconds instead of after minutes of data generation.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"dynsample/internal/core"
	"dynsample/internal/datagen"
	"dynsample/internal/engine"
	"dynsample/internal/parallel"
	"dynsample/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dbKind  = flag.String("db", "tpch", "database: tpch or sales")
		z       = flag.Float64("z", 2.0, "Zipf skew (>= 0)")
		rows    = flag.Int("rows", 200000, "fact rows (>= 1)")
		rate    = flag.Float64("rate", 0.01, "base sampling rate r, in (0, 1]")
		workers = flag.Int("workers", parallel.DefaultWorkers(), "worker goroutines per query and for pre-processing; 1 disables parallelism (0 = serial legacy path)")
		seed    = flag.Int64("seed", 42, "random seed")
		restore = flag.String("restore", "", "load a pre-processed sample set (see aqpcli -save)")
	)
	flag.Parse()
	// Fail fast on invalid parameters — before paying for data generation.
	if err := validateFlags(*dbKind, *rate, *rows, *z, *workers); err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "generating %s database (%d rows)...\n", *dbKind, *rows)
	var (
		db  *engine.Database
		err error
	)
	switch *dbKind {
	case "tpch":
		db, err = datagen.TPCH(datagen.TPCHConfig{ScaleFactor: 1, Zipf: *z, RowsPerSF: *rows, Seed: *seed})
	case "sales":
		db, err = datagen.Sales(datagen.SalesConfig{FactRows: *rows, Zipf: *z, Seed: *seed})
	}
	if err != nil {
		fatal(err)
	}

	sys := core.NewSystem(db)
	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			fatal(err)
		}
		p, err := core.LoadSmallGroup(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if wc, ok := p.(core.WorkerConfigurable); ok {
			wc.SetWorkers(*workers)
		}
		sys.AddPrepared("smallgroup", p)
		fmt.Fprintf(os.Stderr, "restored sample set from %s\n", *restore)
	} else {
		start := time.Now()
		if err := sys.AddStrategy(core.NewSmallGroup(core.SmallGroupConfig{BaseRate: *rate, Seed: *seed, Workers: *workers})); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pre-processing done in %v\n", time.Since(start).Round(time.Millisecond))
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(sys, "smallgroup").Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Fprintf(os.Stderr, "aqpd listening on %s (%d workers)\n", *addr, *workers)
	if err := srv.ListenAndServe(); err != nil {
		fatal(err)
	}
}

// validateFlags rejects out-of-range parameters with actionable messages.
func validateFlags(dbKind string, rate float64, rows int, z float64, workers int) error {
	switch dbKind {
	case "tpch", "sales":
	default:
		return fmt.Errorf("invalid -db %q: must be \"tpch\" or \"sales\"", dbKind)
	}
	if rate <= 0 || rate > 1 {
		return fmt.Errorf("invalid -rate %g: the base sampling rate must be in (0, 1]", rate)
	}
	if rows < 1 {
		return fmt.Errorf("invalid -rows %d: need at least 1 fact row", rows)
	}
	if z < 0 {
		return fmt.Errorf("invalid -z %g: Zipf skew must be >= 0", z)
	}
	if workers < 0 {
		return fmt.Errorf("invalid -workers %d: must be >= 0", workers)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aqpd:", err)
	os.Exit(1)
}
