// Command aqpd serves the AQP middleware over HTTP: generate (or restore) a
// database, run pre-processing once, then answer SQL aggregation queries
// from the samples. The server handles concurrent /query requests; -workers
// additionally parallelises each query's rewritten UNION ALL over
// partitioned scans (and pre-processing itself).
//
// Usage:
//
//	aqpd -db tpch -z 2.0 -rows 200000 -rate 0.01 -workers 8 -addr :8080
//	curl -s localhost:8080/query -d '{"sql":"SELECT s_region, COUNT(*) FROM T GROUP BY s_region"}'
//	curl -s localhost:8080/query -d '{"sql":"SELECT s_region, COUNT(*) FROM T GROUP BY s_region","timeout_ms":50}'
//	curl -s localhost:8080/query -d '{"sql":"SELECT s_region, COUNT(*) FROM T GROUP BY s_region","error_bound":0.05}'
//	curl -s localhost:8080/exact -d '{"sql":"SELECT s_region, COUNT(*) FROM T GROUP BY s_region"}'
//	curl -s localhost:8080/columns
//
// Robustness: every query runs under a deadline (-query-timeout, overridable
// per request via timeout_ms; missed deadlines return 504), concurrent query
// load beyond -max-inflight is shed with 503 + Retry-After, and SIGINT or
// SIGTERM drains in-flight requests (up to -drain-timeout) before exiting.
//
// Durability: with -catalog-dir the server keeps its pre-processed samples in
// a crash-safe snapshot catalog. At startup it recovers the newest generation
// that verifies (falling back to older ones, then to a fresh rebuild — the
// catalog self-heals); POST /admin/rebuild (or -rebuild-interval) re-runs
// pre-processing in the background and swaps the new generation in without
// dropping a single query.
//
// Live ingestion: with -wal-dir the server accepts POST /v1/ingest (batched
// row appends). Each batch is fsynced to a checksummed write-ahead log before
// it is acknowledged, then folded into the serving samples online (continued
// reservoir sampling plus direct small-group inserts), so answers stay
// statistically valid without a rebuild per batch. On restart the WAL is
// replayed over the regenerated base data before the listener opens. When the
// common-set drift gauge crosses -drift-bound, a background rebuild re-derives
// the sample family and swaps it in without downtime.
//
// Flags are validated before the database is generated, so a bad value fails
// in milliseconds instead of after minutes of data generation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dynsample/internal/catalog"
	"dynsample/internal/cluster"
	"dynsample/internal/core"
	"dynsample/internal/datagen"
	"dynsample/internal/engine"
	"dynsample/internal/ingest"
	"dynsample/internal/parallel"
	"dynsample/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		dbKind       = flag.String("db", "tpch", "database: tpch or sales")
		z            = flag.Float64("z", 2.0, "Zipf skew (>= 0)")
		rows         = flag.Int("rows", 200000, "fact rows (>= 1)")
		rate         = flag.Float64("rate", 0.01, "base sampling rate r, in (0, 1]")
		workers      = flag.Int("workers", parallel.DefaultWorkers(), "worker goroutines per query and for pre-processing; 1 disables parallelism (0 = serial legacy path)")
		seed         = flag.Int64("seed", 42, "random seed")
		restore      = flag.String("restore", "", "load a pre-processed sample set (see aqpcli -save)")
		queryTimeout = flag.Duration("query-timeout", 30*time.Second, "default per-query deadline; 0 disables (clients may override per request via timeout_ms)")
		maxInflight  = flag.Int("max-inflight", 0, "max concurrent /query + /exact requests; excess is shed with 503 + Retry-After (0 = unlimited)")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "how long graceful shutdown waits for in-flight requests after SIGINT/SIGTERM")
		catalogDir   = flag.String("catalog-dir", "", "directory for the crash-safe snapshot catalog; samples are recovered from it at startup and every rebuild persists a new generation")
		rebuildEvery = flag.Duration("rebuild-interval", 0, "rebuild the samples periodically, swapping each new generation in without downtime (0 disables; rebuilds are also available on demand via POST /admin/rebuild)")
		debugAddr    = flag.String("debug-addr", "", "listen address for the debug server (pprof, /metrics, /debug/slowlog); empty disables it")
		slowlogSize  = flag.Int("slowlog-size", 0, "how many of the slowest queries /debug/slowlog retains (0 = default)")
		walDir       = flag.String("wal-dir", "", "directory for the ingestion write-ahead log; enables POST /v1/ingest, and durable batches found there are replayed at startup")
		driftBound   = flag.Float64("drift-bound", 1.0, "common-set drift level that triggers a background sample rebuild (negative disables the trigger)")
		maxPending   = flag.Int("max-pending", 0, "max concurrently admitted ingest batches; excess is rejected with 503 + Retry-After (0 = default 64)")
		scanRate     = flag.Float64("scan-rate", 0, "pin the bounded-query planner's latency model to this scan rate in rows/second; 0 learns the rate online from observed executions")

		// Cluster topology. A shard is a normal aqpd that serves one stripe of
		// the fact table; a coordinator holds no data and fans out to shards.
		shardID          = flag.Int("shard-id", -1, "serve only stripe N of the fact table (requires -shards; shard mode)")
		shards           = flag.Int("shards", 0, "total shard count the fact table is striped into (0 = not sharded)")
		coordinator      = flag.Bool("coordinator", false, "run as a cluster coordinator over -shard-addrs instead of serving local data")
		shardAddrs       = flag.String("shard-addrs", "", "comma-separated shard base URLs in shard-id order (coordinator mode)")
		shardTimeout     = flag.Duration("shard-timeout", 10*time.Second, "coordinator: default whole-request deadline, retries and hedges included")
		shardRetries     = flag.Int("shard-retries", 2, "coordinator: retries per shard sub-request on transient failures")
		hedgeAfter       = flag.Duration("hedge-after", 10*time.Millisecond, "coordinator: minimum delay before hedging a slow shard (the p95 latency raises it)")
		breakerThreshold = flag.Int("breaker-threshold", 3, "coordinator: consecutive shard failures that trip its circuit breaker")
		breakerCooldown  = flag.Duration("breaker-cooldown", 500*time.Millisecond, "coordinator: initial backoff before a tripped breaker's first half-open probe")
	)
	flag.Parse()
	if *coordinator {
		if *shards != 0 || *shardID != -1 {
			fatal(fmt.Errorf("-coordinator is exclusive with -shards/-shard-id: a coordinator serves no stripe"))
		}
		if *shardRetries < 0 || *breakerThreshold < 1 || *shardTimeout < 0 || *hedgeAfter < 0 || *breakerCooldown < 0 {
			fatal(fmt.Errorf("invalid coordinator flags: -shard-retries >= 0, -breaker-threshold >= 1, durations >= 0"))
		}
		runCoordinator(coordinatorConfig{
			addr:             *addr,
			shardAddrs:       *shardAddrs,
			shardTimeout:     *shardTimeout,
			shardRetries:     *shardRetries,
			hedgeAfter:       *hedgeAfter,
			breakerThreshold: *breakerThreshold,
			breakerCooldown:  *breakerCooldown,
			drainTimeout:     *drainTimeout,
		})
		return
	}
	// Fail fast on invalid parameters — before paying for data generation.
	if err := validateFlags(*dbKind, *rate, *rows, *z, *workers, *queryTimeout, *maxInflight, *drainTimeout, *rebuildEvery, *slowlogSize, *maxPending, *scanRate); err != nil {
		fatal(err)
	}
	if err := validateShardFlags(*shardID, *shards); err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "generating %s database (%d rows)...\n", *dbKind, *rows)
	var (
		db  *engine.Database
		err error
	)
	switch *dbKind {
	case "tpch":
		db, err = datagen.TPCH(datagen.TPCHConfig{ScaleFactor: 1, Zipf: *z, RowsPerSF: *rows, Seed: *seed})
	case "sales":
		db, err = datagen.Sales(datagen.SalesConfig{FactRows: *rows, Zipf: *z, Seed: *seed})
	}
	if err != nil {
		fatal(err)
	}
	// Shard mode: every shard regenerates the same deterministic base (same
	// -db/-rows/-seed) and keeps only its contiguous stripe; pre-processing,
	// the catalog, and the WAL below all operate on that stripe alone, so a
	// shard needs its own -catalog-dir/-wal-dir.
	if *shards > 0 {
		if db, err = cluster.Stripe(db, *shardID, *shards); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "aqpd: serving shard %d of %d (%d rows of the stripe)\n",
			*shardID, *shards, db.NumRows())
	}

	sys := core.NewSystem(db)
	strategy := core.NewSmallGroup(core.SmallGroupConfig{BaseRate: *rate, Seed: *seed, Workers: *workers, ScanRowsPerSecond: *scanRate})
	var cat *catalog.Catalog
	if *catalogDir != "" {
		if cat, err = catalog.Open(*catalogDir, catalog.Options{}); err != nil {
			fatal(err)
		}
	}

	// Startup recovery order: an explicit -restore file wins; otherwise the
	// catalog's newest verifying generation; otherwise pre-process from
	// scratch (and, with a catalog, persist the fresh build as generation 1 —
	// a catalog whose snapshots all fail verification self-heals this way).
	// Catalog snapshots may be checkpointed (they carry the ingested-row
	// delta, the idempotency window, and the WAL position they cover) or
	// legacy bare sample sets; DecodeSnapshot handles both.
	var gen uint64
	var snap *ingest.Snapshot
	source := "preprocess"
	switch {
	case *restore != "":
		f, err := os.Open(*restore)
		if err != nil {
			fatal(err)
		}
		p, err := core.LoadSmallGroupAny(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if wc, ok := p.(core.WorkerConfigurable); ok {
			wc.SetWorkers(*workers)
		}
		sys.AddPrepared("smallgroup", p)
		source = "snapshot"
		fmt.Fprintf(os.Stderr, "restored sample set from %s\n", *restore)
	case cat != nil:
		res, err := cat.LoadLatest(func(r io.Reader) error {
			s, derr := ingest.DecodeSnapshot(r)
			if derr != nil {
				return derr
			}
			// A checkpointed delta splices onto the regenerated base at a
			// fixed row offset; a different base (changed -rows/-db/-seed)
			// makes this generation unusable, so fail the decode and let
			// LoadLatest fall back to an older one.
			if s.Checkpoint != nil && s.Checkpoint.BaseRows != uint64(db.NumRows()) {
				return fmt.Errorf("checkpoint covers %d base rows but the regenerated base has %d (changed -rows, -db, or -seed?)",
					s.Checkpoint.BaseRows, db.NumRows())
			}
			snap = s
			return nil
		})
		for _, sk := range res.Skipped {
			fmt.Fprintf(os.Stderr, "aqpd: skipping catalog generation %d: %v\n", sk.Generation, sk.Err)
		}
		switch {
		case err == nil:
			if wc, ok := snap.Prepared.(core.WorkerConfigurable); ok {
				wc.SetWorkers(*workers)
			}
			if err := snap.Restore(sys, "smallgroup"); err != nil {
				fatal(err)
			}
			gen, source = res.Generation, "snapshot"
			if ck := snap.Checkpoint; ck != nil {
				fmt.Fprintf(os.Stderr, "recovered sample generation %d from %s (checkpoint: %d ingest batches, wal position %d/%d)\n",
					res.Generation, *catalogDir, ck.DataGen, ck.Seg, ck.Off)
			} else {
				fmt.Fprintf(os.Stderr, "recovered sample generation %d from %s\n", res.Generation, *catalogDir)
			}
		case errors.Is(err, catalog.ErrNoSnapshot):
			fmt.Fprintf(os.Stderr, "no usable snapshot in %s; pre-processing from scratch...\n", *catalogDir)
			preprocess(sys, strategy)
			if g, err := cat.Save(func(w io.Writer) error {
				p, _ := sys.Prepared("smallgroup")
				return core.SaveSmallGroup(w, p)
			}); err != nil {
				fmt.Fprintf(os.Stderr, "aqpd: warning: samples built but not persisted: %v\n", err)
			} else {
				gen = g
				fmt.Fprintf(os.Stderr, "saved sample generation %d to %s\n", g, *catalogDir)
			}
		default:
			fatal(err)
		}
	default:
		preprocess(sys, strategy)
	}

	// Live ingestion: open the WAL, attach the coordinator to the prepared
	// samples, and replay every durable batch onto the regenerated base
	// before the listener accepts a single request. The reservoir seed must
	// be stable across restarts so replay reproduces the sample family
	// bit-identically; SmallGroupFraction is supplied explicitly because
	// snapshot-restored states do not carry it.
	var coord *ingest.Coordinator
	if *walDir != "" {
		w, err := ingest.OpenWAL(*walDir)
		if err != nil {
			fatal(err)
		}
		baseRows := 0
		if snap != nil && snap.Checkpoint != nil {
			baseRows = int(snap.Checkpoint.BaseRows)
			// Finish any segment GC a crash interrupted: everything below the
			// restored checkpoint's position is fully covered by the snapshot.
			if removed, err := w.RemoveSegmentsBelow(snap.Checkpoint.Seg); err != nil {
				fmt.Fprintf(os.Stderr, "aqpd: warning: wal segment gc: %v\n", err)
			} else if removed > 0 {
				fmt.Fprintf(os.Stderr, "aqpd: removed %d checkpoint-covered wal segments\n", removed)
			}
		}
		coord, err = ingest.New(sys, w, ingest.Config{
			Online: core.OnlineConfig{
				Seed:               *seed,
				SmallGroupFraction: 0.5 * *rate,
			},
			MaxPending: *maxPending,
			DriftBound: *driftBound,
			BaseRows:   baseRows,
		})
		if err != nil {
			fatal(err)
		}
		if snap != nil && len(snap.IDs) > 0 {
			coord.SeedIdempotency(snap.IDs)
		}
		rs, err := coord.ReplayWAL()
		if err != nil {
			fatal(fmt.Errorf("wal replay: %w", err))
		}
		// OpenWAL truncates a torn tail before Replay sees the segment, so
		// the crash signature usually surfaces via w.Torn(), not rs.Torn.
		if rs.Torn || w.Torn() {
			fmt.Fprintf(os.Stderr, "aqpd: wal had a torn tail (crash mid-append); it was discarded\n")
		}
		if rs.Batches > 0 || rs.Covered > 0 {
			fmt.Fprintf(os.Stderr, "aqpd: replayed %d ingest batches from %s in %v (%d segments, %d bytes scanned, %d checkpoint-covered batches skipped; generation %d)\n",
				rs.Batches, *walDir, rs.Elapsed.Round(time.Millisecond), rs.Segments, rs.Bytes, rs.Covered, coord.Generation())
		}
	}

	websrv := server.New(sys, server.Config{
		Strategy:       "smallgroup",
		DefaultTimeout: *queryTimeout,
		MaxInflight:    *maxInflight,
		SlowLogSize:    *slowlogSize,
		ShardID:        *shardID,
		Shards:         *shards,
		Rebuild: server.RebuildConfig{
			Strategy: strategy,
			Catalog:  cat,
			Workers:  *workers,
		},
		Ingest: coord,
	})
	websrv.MarkGeneration(gen, source)
	srv := &http.Server{
		Addr:    *addr,
		Handler: websrv.Handler(),
		// Bounded at every stage so no connection can hold resources
		// forever: header read (slowloris), full request read, response
		// write, and keep-alive idle.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      writeTimeoutFor(*queryTimeout),
		IdleTimeout:       2 * time.Minute,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		go serveDebug(dln, websrv)
		fmt.Fprintf(os.Stderr, "aqpd: debug server (pprof, /metrics, /debug/slowlog) on %s\n", dln.Addr())
	}
	if *rebuildEvery > 0 {
		go websrv.AutoRebuild(ctx, *rebuildEvery)
		fmt.Fprintf(os.Stderr, "aqpd: rebuilding samples every %v\n", *rebuildEvery)
	}
	fmt.Fprintf(os.Stderr, "aqpd listening on %s (%d workers, query timeout %v, max in-flight %s)\n",
		ln.Addr(), *workers, *queryTimeout, inflightLabel(*maxInflight))
	err = server.Serve(ctx, srv, ln, *drainTimeout)
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "aqpd: signal received, draining in-flight requests...")
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "aqpd: shutdown complete")
}

// preprocess runs the strategy's pre-processing phase, reporting its wall
// time like every aqpd start always has.
func preprocess(sys *core.System, strategy core.Strategy) {
	start := time.Now()
	if err := sys.AddStrategy(strategy); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pre-processing done in %v\n", time.Since(start).Round(time.Millisecond))
}

// writeTimeoutFor sizes the connection write timeout around the query
// deadline: the handler's compute time counts against WriteTimeout, so it
// must comfortably exceed the slowest admitted query.
func writeTimeoutFor(queryTimeout time.Duration) time.Duration {
	if queryTimeout <= 0 {
		return 5 * time.Minute
	}
	return queryTimeout + 30*time.Second
}

func inflightLabel(n int) string {
	if n <= 0 {
		return "unlimited"
	}
	return fmt.Sprint(n)
}

// validateShardFlags checks the shard-mode pair: both or neither.
func validateShardFlags(shardID, shards int) error {
	if shards < 0 {
		return fmt.Errorf("invalid -shards %d: must be >= 0 (0 = not sharded)", shards)
	}
	if shards == 0 {
		if shardID != -1 {
			return fmt.Errorf("-shard-id %d given without -shards", shardID)
		}
		return nil
	}
	if shardID < 0 || shardID >= shards {
		return fmt.Errorf("invalid -shard-id %d: must be in [0, %d) with -shards %d", shardID, shards, shards)
	}
	return nil
}

// validateFlags rejects out-of-range parameters with actionable messages.
func validateFlags(dbKind string, rate float64, rows int, z float64, workers int, queryTimeout time.Duration, maxInflight int, drainTimeout time.Duration, rebuildEvery time.Duration, slowlogSize int, maxPending int, scanRate float64) error {
	switch dbKind {
	case "tpch", "sales":
	default:
		return fmt.Errorf("invalid -db %q: must be \"tpch\" or \"sales\"", dbKind)
	}
	if rate <= 0 || rate > 1 {
		return fmt.Errorf("invalid -rate %g: the base sampling rate must be in (0, 1]", rate)
	}
	if rows < 1 {
		return fmt.Errorf("invalid -rows %d: need at least 1 fact row", rows)
	}
	if z < 0 {
		return fmt.Errorf("invalid -z %g: Zipf skew must be >= 0", z)
	}
	if workers < 0 {
		return fmt.Errorf("invalid -workers %d: must be >= 0", workers)
	}
	if queryTimeout < 0 {
		return fmt.Errorf("invalid -query-timeout %v: must be >= 0 (0 disables the default deadline)", queryTimeout)
	}
	if maxInflight < 0 {
		return fmt.Errorf("invalid -max-inflight %d: must be >= 0 (0 means unlimited)", maxInflight)
	}
	if drainTimeout < 0 {
		return fmt.Errorf("invalid -drain-timeout %v: must be >= 0 (0 waits indefinitely)", drainTimeout)
	}
	if rebuildEvery < 0 {
		return fmt.Errorf("invalid -rebuild-interval %v: must be >= 0 (0 disables periodic rebuilds)", rebuildEvery)
	}
	if slowlogSize < 0 {
		return fmt.Errorf("invalid -slowlog-size %d: must be >= 0 (0 means the default size)", slowlogSize)
	}
	if maxPending < 0 {
		return fmt.Errorf("invalid -max-pending %d: must be >= 0 (0 means the default)", maxPending)
	}
	if scanRate < 0 {
		return fmt.Errorf("invalid -scan-rate %g: must be >= 0 (0 learns the rate online)", scanRate)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aqpd:", err)
	os.Exit(1)
}
