package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fastBackoff collapses the retry waits for the duration of one test.
func fastBackoff(t *testing.T) {
	t.Helper()
	old := ingestBackoff
	ingestBackoff = time.Millisecond
	t.Cleanup(func() { ingestBackoff = old })
}

func sampleBatch() ([]string, [][]json.RawMessage) {
	return []string{"region", "amount"},
		[][]json.RawMessage{
			{json.RawMessage(`"east"`), json.RawMessage(`7`)},
			{json.RawMessage(`"west"`), json.RawMessage(`3`)},
		}
}

// ingestServer records every /v1/ingest request's batch_id and answers with
// the per-attempt status codes, then 200.
type ingestServer struct {
	srv      *httptest.Server
	attempts atomic.Int64
	ids      []string
	statuses []int
	headers  map[string]string
}

func newIngestServer(t *testing.T, statuses []int, headers map[string]string) *ingestServer {
	t.Helper()
	is := &ingestServer{statuses: statuses, headers: headers}
	is.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(is.attempts.Add(1)) - 1
		body, _ := io.ReadAll(r.Body)
		var req struct {
			BatchID string `json:"batch_id"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			t.Errorf("attempt %d: undecodable ingest body: %v", n, err)
		}
		is.ids = append(is.ids, req.BatchID)
		if n < len(is.statuses) {
			for k, v := range is.headers {
				w.Header().Set(k, v)
			}
			w.WriteHeader(is.statuses[n])
			return
		}
		w.Write([]byte(`{"appended":2}`))
	}))
	t.Cleanup(is.srv.Close)
	return is
}

func (is *ingestServer) sameIDThroughout(t *testing.T, want string) {
	t.Helper()
	for i, id := range is.ids {
		if id != want {
			t.Errorf("attempt %d used batch_id %q, want %q on every retry", i, id, want)
		}
	}
}

func TestPostBatchRetries503ThenSucceeds(t *testing.T) {
	fastBackoff(t)
	is := newIngestServer(t, []int{503, 503}, nil)
	cols, rows := sampleBatch()
	if err := postBatch(is.srv.URL, "b-0", cols, rows, 5); err != nil {
		t.Fatalf("postBatch: %v", err)
	}
	if got := is.attempts.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3 (two 503s then success)", got)
	}
	is.sameIDThroughout(t, "b-0")
}

func TestPostBatchRetries5xxAndTransportErrors(t *testing.T) {
	fastBackoff(t)
	is := newIngestServer(t, []int{500, 502}, nil)
	cols, rows := sampleBatch()
	if err := postBatch(is.srv.URL, "b-1", cols, rows, 5); err != nil {
		t.Fatalf("postBatch after 5xx: %v", err)
	}
	if got := is.attempts.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}

	// A connection that dies before any response is a transport error; the
	// retry lands on a healthy server.
	var killed atomic.Bool
	healthy := newIngestServer(t, nil, nil)
	killer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if killed.CompareAndSwap(false, true) {
			hj := w.(http.Hijacker)
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
			}
			return
		}
		// Relay to the healthy backend after the one killed connection.
		healthy.srv.Config.Handler.ServeHTTP(w, r)
	}))
	t.Cleanup(killer.Close)
	if err := postBatch(killer.URL, "b-2", cols, rows, 3); err != nil {
		t.Fatalf("postBatch after killed connection: %v", err)
	}
	if !killed.Load() {
		t.Fatal("kill path never exercised")
	}
}

func TestPostBatchGivesUpAfterBound(t *testing.T) {
	fastBackoff(t)
	always := make([]int, 100)
	for i := range always {
		always[i] = 503
	}
	is := newIngestServer(t, always, nil)
	cols, rows := sampleBatch()
	err := postBatch(is.srv.URL, "b-3", cols, rows, 2)
	if err == nil {
		t.Fatal("postBatch succeeded against a permanently overloaded server")
	}
	if !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Errorf("error %q does not mention the attempt bound", err)
	}
	if got := is.attempts.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want exactly retries+1 = 3", got)
	}
	is.sameIDThroughout(t, "b-3")
}

func TestPostBatchDoesNotRetryClientErrors(t *testing.T) {
	fastBackoff(t)
	is := newIngestServer(t, []int{400}, nil)
	cols, rows := sampleBatch()
	if err := postBatch(is.srv.URL, "b-4", cols, rows, 5); err == nil {
		t.Fatal("postBatch swallowed a 400")
	}
	if got := is.attempts.Load(); got != 1 {
		t.Errorf("server saw %d attempts for a 400, want 1 (client errors are not transient)", got)
	}
}

func TestPostBatchHonorsRetryAfter(t *testing.T) {
	fastBackoff(t)
	is := newIngestServer(t, []int{503}, map[string]string{"Retry-After": "1"})
	cols, rows := sampleBatch()
	start := time.Now()
	if err := postBatch(is.srv.URL, "b-5", cols, rows, 2); err != nil {
		t.Fatalf("postBatch: %v", err)
	}
	// jitterDelay spreads the 1s hint over [1s, 2s); with the local backoff
	// collapsed to 1ms, any wait near a second proves the hint was used.
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Errorf("retried after %v, want >= the server's 1s Retry-After hint", elapsed)
	}
}

func TestJitterDelayEnvelope(t *testing.T) {
	d := 10 * time.Millisecond
	seen := map[time.Duration]bool{}
	for i := 0; i < 200; i++ {
		got := jitterDelay(d)
		if got < d || got >= 2*d {
			t.Fatalf("jitterDelay(%v) = %v, want in [%v, %v)", d, got, d, 2*d)
		}
		seen[got] = true
	}
	if len(seen) < 2 {
		t.Error("jitterDelay produced no variation over 200 draws")
	}
	if got := jitterDelay(0); got != 0 {
		t.Errorf("jitterDelay(0) = %v, want 0", got)
	}
}
