// Command aqpcli is an interactive approximate-query shell: it generates (or
// loads the parameters of) a synthetic database, runs a strategy's
// pre-processing phase, and then answers SQL aggregation queries
// approximately, showing per-group confidence intervals, exactness flags and
// the rewritten UNION ALL sample query.
//
// Usage:
//
//	aqpcli -db tpch -z 2.0 -rows 200000 -rate 0.01
//	aqpcli -db sales -error-bound 0.05 -query "SELECT s_region, COUNT(*) FROM T GROUP BY s_region"
//	> SELECT s_region, COUNT(*) FROM T GROUP BY s_region;
//	> \explain SELECT o_clerk, COUNT(*) FROM T GROUP BY o_clerk;
//	> \exact   SELECT p_brand, SUM(l_extendedprice) FROM T GROUP BY p_brand;
//	> \quit
//
// The `ingest` subcommand instead acts as a client for a running aqpd,
// streaming CSV rows to POST /v1/ingest in idempotent batches:
//
//	aqpcli ingest -addr http://localhost:8080 -file new_rows.csv -batch-size 500
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"dynsample/internal/catalog"
	"dynsample/internal/core"
	"dynsample/internal/datagen"
	"dynsample/internal/engine"
	"dynsample/internal/metrics"
	"dynsample/internal/parallel"
	"dynsample/internal/sqlparse"
	"dynsample/internal/uniform"
)

func main() {
	// Subcommands run against a live aqpd instead of building a local system.
	if len(os.Args) > 1 && os.Args[1] == "ingest" {
		runIngest(os.Args[2:])
		return
	}
	var (
		dbKind   = flag.String("db", "tpch", "database: tpch or sales")
		load     = flag.String("load", "", "load a single-table database from a CSV file instead of generating one")
		z        = flag.Float64("z", 2.0, "Zipf skew (>= 0)")
		rows     = flag.Int("rows", 200000, "fact rows (>= 1)")
		rate     = flag.Float64("rate", 0.01, "base sampling rate r, in (0, 1]")
		workers  = flag.Int("workers", parallel.DefaultWorkers(), "worker goroutines per query and for pre-processing; 0 = serial legacy path")
		strategy = flag.String("strategy", "smallgroup", "strategy: smallgroup or uniform")
		seed     = flag.Int64("seed", 42, "random seed")
		query    = flag.String("query", "", "run one query and exit")
		timeout  = flag.Duration("timeout", 0, "per-query deadline; 0 disables. Queries that would overrun degrade to the overall sample, then abort with an error")
		errBound = flag.Float64("error-bound", 0, "ask the planner for answers within this mean relative error, in (0, 1); 0 disables")
		tBound   = flag.Duration("time-bound", 0, "ask the planner for the most accurate plan predicted to finish within this duration; 0 disables")
		save     = flag.String("save", "", "write the pre-processed sample set to this file after building it")
		restore  = flag.String("restore", "", "load a pre-processed sample set instead of re-running pre-processing")
	)
	flag.Parse()
	// Fail fast on invalid parameters — before paying for data generation.
	if *rate <= 0 || *rate > 1 {
		fatal(fmt.Errorf("invalid -rate %g: the base sampling rate must be in (0, 1]", *rate))
	}
	if *rows < 1 {
		fatal(fmt.Errorf("invalid -rows %d: need at least 1 fact row", *rows))
	}
	if *workers < 0 {
		fatal(fmt.Errorf("invalid -workers %d: must be >= 0", *workers))
	}
	if *timeout < 0 {
		fatal(fmt.Errorf("invalid -timeout %v: must be >= 0 (0 disables the deadline)", *timeout))
	}
	if *errBound < 0 || *errBound >= 1 {
		fatal(fmt.Errorf("invalid -error-bound %g: must be in [0, 1) (0 disables)", *errBound))
	}
	if *tBound < 0 {
		fatal(fmt.Errorf("invalid -time-bound %v: must be >= 0 (0 disables)", *tBound))
	}
	bounds := core.Bounds{ErrorBound: *errBound, TimeBound: *tBound}
	if *load == "" {
		switch *dbKind {
		case "tpch", "sales":
		default:
			fatal(fmt.Errorf("invalid -db %q: must be \"tpch\" or \"sales\"", *dbKind))
		}
	}

	var (
		db  *engine.Database
		err error
	)
	if *load != "" {
		fmt.Fprintf(os.Stderr, "loading %s...\n", *load)
		db, err = loadCSV(*load)
	} else {
		fmt.Fprintf(os.Stderr, "generating %s database (%d rows)...\n", *dbKind, *rows)
		switch *dbKind {
		case "tpch":
			db, err = datagen.TPCH(datagen.TPCHConfig{ScaleFactor: 1, Zipf: *z, RowsPerSF: *rows, Seed: *seed})
		case "sales":
			db, err = datagen.Sales(datagen.SalesConfig{FactRows: *rows, Zipf: *z, Seed: *seed})
		}
	}
	if err != nil {
		fatal(err)
	}

	sys := core.NewSystem(db)
	if *restore != "" {
		fmt.Fprintf(os.Stderr, "restoring sample set from %s...\n", *restore)
		f, err := os.Open(*restore)
		if err != nil {
			fatal(err)
		}
		p, err := core.LoadSmallGroupAny(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if wc, ok := p.(core.WorkerConfigurable); ok {
			wc.SetWorkers(*workers)
		}
		sys.AddPrepared("smallgroup", p)
	} else {
		fmt.Fprintf(os.Stderr, "pre-processing (%s, r=%g)...\n", *strategy, *rate)
		switch *strategy {
		case "smallgroup":
			err = sys.AddStrategy(core.NewSmallGroup(core.SmallGroupConfig{BaseRate: *rate, Seed: *seed, Workers: *workers}))
		case "uniform":
			err = sys.AddStrategy(uniform.New(uniform.Config{Label: "smallgroup", Rate: *rate, Seed: *seed})) // registered under the same key for simplicity
		default:
			err = fmt.Errorf("unknown strategy %q", *strategy)
		}
		if err != nil {
			fatal(err)
		}
	}
	if *save != "" {
		// Atomic + checksummed: the file appears under its final name only
		// after a successful write and fsync, in the snapshot container that
		// LoadSmallGroupAny verifies on the way back in. A crash mid-save
		// leaves any previous file untouched.
		p, _ := sys.Prepared("smallgroup")
		err := catalog.WriteFileAtomic(*save, func(w io.Writer) error {
			return core.SaveSmallGroupSnapshot(w, p)
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sample set saved to %s\n", *save)
	}
	p, _ := sys.Prepared("smallgroup")
	fmt.Fprintf(os.Stderr, "ready: %d base rows, %d sample rows, pre-processing took %v\n",
		db.NumRows(), p.SampleRows(), sys.PreprocessTime("smallgroup").Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "columns: %s\n", strings.Join(firstN(db.Columns(), 12), ", ")+", ...")

	if *query != "" {
		if err := runQuery(sys, db, *query, *timeout, bounds, false, false); err != nil {
			fatal(err)
		}
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\quit` || line == `\q`:
			return
		case line == `\columns`:
			fmt.Println(strings.Join(db.Columns(), ", "))
		case strings.HasPrefix(line, `\explain `):
			if err := runQuery(sys, db, strings.TrimPrefix(line, `\explain `), *timeout, bounds, true, false); err != nil {
				fmt.Println("error:", err)
			}
		case strings.HasPrefix(line, `\exact `):
			if err := runQuery(sys, db, strings.TrimPrefix(line, `\exact `), *timeout, bounds, false, true); err != nil {
				fmt.Println("error:", err)
			}
		default:
			if err := runQuery(sys, db, line, *timeout, bounds, false, false); err != nil {
				fmt.Println("error:", err)
			}
		}
		fmt.Print("> ")
	}
}

func runQuery(sys *core.System, db *engine.Database, sql string, timeout time.Duration, bounds core.Bounds, explain, compareExact bool) error {
	stmt, err := sqlparse.Parse(strings.TrimSuffix(sql, ";"))
	if err != nil {
		return err
	}
	compiled, err := sqlparse.Compile(stmt, db)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	ans, err := sys.ApproxBoundsCtx(ctx, "smallgroup", compiled.Query, bounds)
	if err != nil {
		return err
	}
	if explain && ans.Rewrite != nil {
		fmt.Println("-- rewritten query:")
		fmt.Println(ans.Rewrite.SQL())
		fmt.Println()
	}
	if d := ans.Plan; d != nil {
		fmt.Printf("-- plan %s: predicted error %.4f, achieved %.4f (%d candidates)\n",
			d.Chosen.Name, d.Chosen.PredictedError, d.AchievedError, len(d.Candidates))
		if explain {
			for _, c := range d.Candidates {
				fmt.Printf("--   %-32s %8d rows  err %.4f  %8s  feasible=%v\n", c.Name, c.Rows,
					c.PredictedError, time.Duration(c.PredictedLatencyMicros)*time.Microsecond, c.Feasible)
			}
		}
		for _, cv := range d.Caveats {
			fmt.Println("-- caveat:", cv)
		}
	}
	printAnswer(compiled, ans)
	degraded := ""
	if ans.Degraded {
		degraded = ", degraded to the overall sample to meet the deadline"
	}
	fmt.Printf("(%d groups, %d sample rows read, %v%s)\n",
		ans.Result.NumGroups(), ans.RowsRead, ans.Elapsed.Round(time.Microsecond), degraded)

	if compareExact {
		exact, d, err := sys.ExactCtx(ctx, compiled.Query)
		if err != nil {
			return err
		}
		acc, err := metrics.Compare(exact, ans.Result, 0)
		if err != nil {
			return err
		}
		fmt.Printf("exact: %d groups in %v | RelErr=%.4f PctGroupsMissed=%.1f%%\n",
			exact.NumGroups(), d.Round(time.Millisecond), acc.RelErr, acc.PctGroups)
	}
	return nil
}

// printAnswer renders the answer using the SELECT-list mapping, honouring
// the query's HAVING/ORDER BY/LIMIT; without ORDER BY, groups are shown
// largest first. Display is capped at 40 rows.
func printAnswer(c *sqlparse.Compiled, ans *core.Answer) {
	for _, o := range c.Outputs {
		fmt.Printf("%-22s", o.Name)
	}
	fmt.Println()
	groups := c.Present(ans.Result)
	if len(c.Order) == 0 {
		sort.SliceStable(groups, func(i, j int) bool {
			return groups[i].Vals[0] > groups[j].Vals[0]
		})
	}
	const limit = 40
	for i, g := range groups {
		if i == limit {
			fmt.Printf("... (%d more groups)\n", len(groups)-limit)
			break
		}
		key := engine.EncodeKey(g.Key)
		for _, o := range c.Outputs {
			switch o.Kind {
			case sqlparse.OutGroup:
				fmt.Printf("%-22s", g.Key[o.GroupIndex].String())
			case sqlparse.OutAgg:
				iv := ans.Interval(key, o.AggIndex)
				if g.Exact {
					fmt.Printf("%-22s", fmt.Sprintf("%.2f (exact)", g.Vals[o.AggIndex]))
				} else {
					fmt.Printf("%-22s", fmt.Sprintf("%.2f ±%.2f", g.Vals[o.AggIndex], iv.Width()/2))
				}
			case sqlparse.OutAvg:
				den := g.Vals[o.DenIndex]
				avg := 0.0
				if den != 0 {
					avg = g.Vals[o.NumIndex] / den
				}
				suffix := ""
				if g.Exact {
					suffix = " (exact)"
				}
				fmt.Printf("%-22s", fmt.Sprintf("%.2f%s", avg, suffix))
			}
		}
		fmt.Println()
	}
}

// loadCSV builds a single-table database from a CSV file with a header row.
func loadCSV(path string) (*engine.Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	tbl, err := engine.ReadCSV(name, f)
	if err != nil {
		return nil, err
	}
	return engine.NewDatabase(name, tbl)
}

func firstN(s []string, n int) []string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aqpcli:", err)
	os.Exit(1)
}
