package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

// runIngest is the `aqpcli ingest` subcommand: stream CSV rows (a file or
// stdin) to a running aqpd's POST /v1/ingest in batches. The server's
// /v1/columns metadata supplies the column order and types, so plain CSV
// cells are encoded as the right JSON types. Each batch carries a derived
// idempotency id, and 503 backpressure is retried with the same id — safe to
// re-run after a partial failure.
func runIngest(args []string) {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	var (
		addr      = fs.String("addr", "http://localhost:8080", "aqpd base URL")
		file      = fs.String("file", "-", "CSV file of rows to append (\"-\" = stdin); columns in the view's order, no header unless -header")
		header    = fs.Bool("header", false, "skip the first CSV line (a header row)")
		batchSize = fs.Int("batch-size", 500, "rows per ingest batch")
		idPrefix  = fs.String("id-prefix", "", "idempotency id prefix for batches (default: derived from the file name and start time)")
		retries   = fs.Int("retries", 10, "retries per batch on transient failures (503 backpressure, 5xx, transport errors); each retry reuses the batch's idempotency id")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: aqpcli ingest [-addr URL] [-file rows.csv] [-header] [-batch-size N]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *batchSize < 1 {
		fatal(fmt.Errorf("invalid -batch-size %d: need at least 1 row per batch", *batchSize))
	}
	if *retries < 0 {
		fatal(fmt.Errorf("invalid -retries %d: must be >= 0", *retries))
	}

	cols, types, err := fetchSchema(*addr)
	if err != nil {
		fatal(err)
	}

	var in io.Reader = os.Stdin
	name := "stdin"
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in, name = f, *file
	}
	if *idPrefix == "" {
		*idPrefix = fmt.Sprintf("%s-%d", name, time.Now().UnixNano())
	}

	r := csv.NewReader(in)
	r.FieldsPerRecord = len(cols)
	if *header {
		if _, err := r.Read(); err != nil {
			fatal(fmt.Errorf("reading header: %w", err))
		}
	}

	var (
		batch   [][]json.RawMessage
		batchNo int
		total   int
		start   = time.Now()
	)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		id := fmt.Sprintf("%s-%d", *idPrefix, batchNo)
		if err := postBatch(*addr, id, cols, batch, *retries); err != nil {
			return err
		}
		total += len(batch)
		batchNo++
		batch = batch[:0]
		return nil
	}
	for line := 1; ; line++ {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		row := make([]json.RawMessage, len(cols))
		for i, cell := range rec {
			enc, err := encodeCSVCell(types[cols[i]], cell)
			if err != nil {
				fatal(fmt.Errorf("line %d, column %q: %w", line, cols[i], err))
			}
			row[i] = enc
		}
		batch = append(batch, row)
		if len(batch) >= *batchSize {
			if err := flush(); err != nil {
				fatal(err)
			}
		}
	}
	if err := flush(); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "ingested %d rows in %d batches in %v (%.0f rows/sec)\n",
		total, batchNo, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
}

// fetchSchema reads the view's column order and types from GET /v1/columns.
func fetchSchema(addr string) ([]string, map[string]string, error) {
	resp, err := http.Get(strings.TrimRight(addr, "/") + "/v1/columns")
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return nil, nil, fmt.Errorf("GET /v1/columns: %s: %s", resp.Status, body)
	}
	var meta struct {
		Columns []string          `json:"columns"`
		Types   map[string]string `json:"types"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		return nil, nil, err
	}
	if len(meta.Columns) == 0 {
		return nil, nil, fmt.Errorf("server reported no columns")
	}
	return meta.Columns, meta.Types, nil
}

// encodeCSVCell turns one CSV cell into the JSON value the ingest endpoint
// expects for the column's type.
func encodeCSVCell(typ, cell string) (json.RawMessage, error) {
	switch typ {
	case "INT":
		if _, err := strconv.ParseInt(strings.TrimSpace(cell), 10, 64); err != nil {
			return nil, fmt.Errorf("want an integer, got %q", cell)
		}
		return json.RawMessage(strings.TrimSpace(cell)), nil
	case "FLOAT":
		if _, err := strconv.ParseFloat(strings.TrimSpace(cell), 64); err != nil {
			return nil, fmt.Errorf("want a number, got %q", cell)
		}
		return json.RawMessage(strings.TrimSpace(cell)), nil
	default: // VARCHAR, or unknown types default to string
		return json.Marshal(cell)
	}
}

// ingestBackoff is the initial retry backoff when the server gives no
// Retry-After hint (doubled per retry, jittered). A variable so tests can
// collapse the waits.
var ingestBackoff = 250 * time.Millisecond

// postBatch sends one batch, retrying transient failures — 503 backpressure,
// other 5xx, and transport errors (a connection that died mid-request) — up
// to retries extra attempts, always with the same idempotency id: the server
// deduplicates batch_id, so a retry after an ambiguous failure cannot
// double-append. A 503's Retry-After hint overrides the local backoff.
// Non-503 4xx means the batch itself is bad and is never retried.
func postBatch(addr, id string, cols []string, rows [][]json.RawMessage, retries int) error {
	body, err := json.Marshal(map[string]any{
		"columns":  cols,
		"rows":     rows,
		"batch_id": id,
	})
	if err != nil {
		return err
	}
	backoff := ingestBackoff
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			time.Sleep(jitterDelay(backoff))
			backoff *= 2
		}
		resp, err := http.Post(strings.TrimRight(addr, "/")+"/v1/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			return nil
		case resp.StatusCode == http.StatusServiceUnavailable:
			lastErr = fmt.Errorf("%s: %s", resp.Status, out)
			// The server knows how loaded it is; let its hint replace the
			// next doubling step.
			if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
					backoff = time.Duration(secs) * time.Second
				}
			}
		case resp.StatusCode >= 500:
			lastErr = fmt.Errorf("%s: %s", resp.Status, out)
		default:
			return fmt.Errorf("POST /v1/ingest (batch %s): %s: %s", id, resp.Status, out)
		}
	}
	return fmt.Errorf("POST /v1/ingest (batch %s): giving up after %d attempts: %w", id, retries+1, lastErr)
}

// jitterDelay spreads a backoff uniformly over [d, 2d) so synchronized
// clients (many aqpcli processes told to retry at once) desynchronise.
func jitterDelay(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d + time.Duration(rand.Int63n(int64(d)))
}
