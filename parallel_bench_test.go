// Benchmarks for the parallel execution layer: the partitioned scan kernel
// against the serial one, and query throughput under concurrent clients.
// See EXPERIMENTS.md ("Parallel execution") for how to interpret the numbers;
// speedups require real cores (compare `nproc` against the workers suffix).
package dynsample

import (
	"fmt"
	"sync"
	"testing"

	"dynsample/internal/core"
	"dynsample/internal/datagen"
	"dynsample/internal/engine"
	"dynsample/internal/parallel"
)

// parallelBenchDB is the 200k-row TPC-H config from the README quick start,
// built once and shared by the parallel benchmarks (read-only).
var (
	parallelBenchOnce sync.Once
	parallelBenchDB   *engine.Database
	parallelBenchSys  *core.System
)

func parallelBench(b *testing.B) (*engine.Database, *core.System) {
	b.Helper()
	parallelBenchOnce.Do(func() {
		db, err := datagen.TPCH(datagen.TPCHConfig{ScaleFactor: 1, Zipf: 2.0, RowsPerSF: 200000, Seed: 42})
		if err != nil {
			panic(err)
		}
		parallelBenchDB = db
		parallelBenchSys = core.NewSystem(db)
		if err := parallelBenchSys.AddStrategy(core.NewSmallGroup(core.SmallGroupConfig{
			BaseRate: 0.01, Seed: 42, Workers: parallel.DefaultWorkers(),
		})); err != nil {
			panic(err)
		}
	})
	return parallelBenchDB, parallelBenchSys
}

var parallelBenchQuery = &engine.Query{
	GroupBy: []string{"p_brand"},
	Aggs:    []engine.Aggregate{{Kind: engine.Count}, {Kind: engine.Sum, Col: "l_extendedprice"}},
}

// BenchmarkParallelScan compares the serial scan kernel (workers=0) with the
// partitioned kernel at increasing worker counts, on a full scan of the
// 200k-row TPC-H base view. The serial/workers=1 pair measures the sharding
// overhead; workers=NumCPU measures the speedup the hardware allows.
func BenchmarkParallelScan(b *testing.B) {
	db, _ := parallelBench(b)
	counts := []int{0, 1, 2}
	if n := parallel.DefaultWorkers(); n > 2 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "serial"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Execute(db, parallelBenchQuery, engine.ExecOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConcurrentQuery measures approximate-query throughput with many
// concurrent clients sharing one pre-processed sample set, the server's
// steady-state shape. Run with -cpu to vary client parallelism, e.g.
// `go test -bench ConcurrentQuery -cpu 1,4,8 .`
func BenchmarkConcurrentQuery(b *testing.B) {
	_, sys := parallelBench(b)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := sys.Approx("smallgroup", parallelBenchQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
}
