# Convenience targets for the dynsample reproduction.

GO ?= go

.PHONY: all check build test vet cover bench experiments experiments-quick examples faults smoke fuzz fuzz-smoke clean

all: build vet test

# The CI gate: build + vet + full test suite under the race detector.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Fault-injection and stress tests: deterministic timeout / cancellation /
# overload / drain / panic-recovery scenarios, the concurrent-query stress
# test, and the crash/corruption recovery suite (snapshot truncation and
# bit-flip detection, catalog generation fallback, zero-downtime rebuild
# swaps), all under the race detector.
faults:
	$(GO) test -race -timeout 120s ./internal/faults ./internal/catalog
	$(GO) test -race -timeout 180s \
		-run 'Ctx|Cancel|Deadline|Degrade|Overload|Drain|Panic|Stuck|Robust|BadRequest|Malformed|Stress|WriteJSON|ExactParity|Snapshot|Catalog|Recovery|Rebuild|Swap|Healthz|Readyz|HostileLength' \
		./internal/parallel ./internal/engine ./internal/core ./internal/server

# End-to-end smoke test: boot aqpd, run an explain query over /v1, scrape
# /metrics and /debug/slowlog, check the error envelope and request-id echo.
smoke:
	bash scripts/smoke.sh

# Short mode skips the slowest end-to-end experiment tests.
test-short:
	$(GO) test -short ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every paper figure at full scale (~10 min, single core).
experiments:
	$(GO) run ./cmd/experiments -all

experiments-quick:
	$(GO) run ./cmd/experiments -all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/skewexplorer
	$(GO) run ./examples/sumoutliers
	$(GO) run ./examples/workloadtuned
	$(GO) run ./examples/salesdashboard

fuzz:
	$(GO) test ./internal/sqlparse -fuzz FuzzParse -fuzztime 30s

# Quick fuzz pass over the sample-store loader: arbitrary bytes (including
# bit-flipped valid snapshots) must produce errors, never panics.
fuzz-smoke:
	$(GO) test ./internal/core -run FuzzLoadSmallGroup -fuzz FuzzLoadSmallGroup -fuzztime 15s

clean:
	$(GO) clean ./...
