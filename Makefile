# Convenience targets for the dynsample reproduction.

GO ?= go

.PHONY: all check build test vet cover bench bench-json bench-guard scenarios scenario-smoke experiments experiments-quick examples faults smoke fuzz fuzz-smoke clean

all: build vet test

# The CI gate: build + vet + full test suite under the race detector,
# plus the dead-link check over the markdown docs and a known-vulnerability
# scan (skipped quietly where govulncheck is not installed; CI installs it).
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	bash scripts/doclinks.sh
	bash scripts/scripts_test.sh
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping vulnerability scan"; \
	fi
	@if [ "$(BENCH_GUARD)" = "1" ]; then $(MAKE) bench-guard; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Fault-injection and stress tests: deterministic timeout / cancellation /
# overload / drain / panic-recovery scenarios, the concurrent-query stress
# test, the crash/corruption recovery suite (snapshot truncation and
# bit-flip detection, catalog generation fallback, zero-downtime rebuild
# swaps), the ingestion suite (torn-WAL crash recovery, fsync failure,
# backpressure, drift-triggered rebuild, checkpoint GC, degraded mode,
# ingest+query+rebuild stress), and the crash-point simulator (a crash or
# I/O error at every hook point of ingest → rebuild → checkpoint → GC →
# restart), and the cluster tier's network fault drills (shard death mid
# query, flaky transports, truncated responses, hedging, breaker trips and
# half-open re-admission), all under the race detector.
faults:
	$(GO) test -race -timeout 120s ./internal/faults ./internal/faults/crashsim ./internal/catalog
	$(GO) test -race -timeout 180s ./internal/ingest
	$(GO) test -race -timeout 120s ./internal/cluster
	$(GO) test -race -timeout 180s \
		-run 'Ctx|Cancel|Deadline|Degrade|Overload|Drain|Panic|Stuck|Robust|BadRequest|Malformed|Stress|WriteJSON|ExactParity|Snapshot|Catalog|Recovery|Rebuild|Swap|Healthz|Readyz|HostileLength|Ingest|WAL|Checkpoint|Shard' \
		./internal/parallel ./internal/engine ./internal/core ./internal/server

# End-to-end smoke test: boot aqpd, run an explain query over /v1, scrape
# /metrics and /debug/slowlog, check the error envelope and request-id echo,
# then ingest rows through aqpcli, kill -9 the server and verify WAL replay.
smoke:
	bash scripts/smoke.sh

# Short mode skips the slowest end-to-end experiment tests.
test-short:
	$(GO) test -short ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

# Ingest- and query-path benchmarks with machine-readable JSON output
# (BENCH_ingest.json / BENCH_query.json) for commit-to-commit comparison.
bench-json:
	bash scripts/bench.sh

# Benchmark regression guard: reruns the benchmarks into a scratch dir and
# fails if any ns_per_op regressed >25% versus the committed baseline JSON.
# Also runs as part of `make check BENCH_GUARD=1`. Override BENCHTIME for a
# longer, less noisy run; refresh baselines with `make bench-json`.
bench-guard:
	@mkdir -p /tmp/benchguard
	BENCH_OUTDIR=/tmp/benchguard BENCHTIME=$${BENCHTIME:-500ms} bash scripts/bench.sh
	bash scripts/benchdiff.sh BENCH_ingest.json /tmp/benchguard/BENCH_ingest.json
	bash scripts/benchdiff.sh BENCH_query.json /tmp/benchguard/BENCH_query.json

# Full scenario sweep: run every committed case end-to-end against a live
# server and write one SCENARIO_<case>.json verdict per case. Fails if any
# declared gate (RelErr ceiling, QPS floor, memory/build budget) fails.
scenarios:
	$(GO) run ./cmd/aqpscenario -cases scenarios/cases -out scenarios/verdicts -v

# The CI smoke slice: just the tiny uniform case (a few seconds).
scenario-smoke:
	@mkdir -p /tmp/scenario-smoke
	$(GO) run ./cmd/aqpscenario -case uniform_smoke -out /tmp/scenario-smoke -v

# Regenerate every paper figure at full scale (~10 min, single core).
experiments:
	$(GO) run ./cmd/experiments -all

experiments-quick:
	$(GO) run ./cmd/experiments -all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/skewexplorer
	$(GO) run ./examples/sumoutliers
	$(GO) run ./examples/workloadtuned
	$(GO) run ./examples/salesdashboard

fuzz:
	$(GO) test ./internal/sqlparse -fuzz FuzzParse -fuzztime 30s

# Quick fuzz pass over the sample-store loader and the WAL record decoder:
# arbitrary bytes (including bit-flipped valid inputs) must produce errors,
# never panics.
fuzz-smoke:
	$(GO) test ./internal/core -run FuzzLoadSmallGroup -fuzz FuzzLoadSmallGroup -fuzztime 15s
	$(GO) test ./internal/ingest -run FuzzWALDecode -fuzz FuzzWALDecode -fuzztime 15s

clean:
	$(GO) clean ./...
