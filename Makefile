# Convenience targets for the dynsample reproduction.

GO ?= go

.PHONY: all check build test vet cover bench experiments experiments-quick examples faults fuzz clean

all: build vet test

# The CI gate: build + vet + full test suite under the race detector.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Fault-injection and stress tests: deterministic timeout / cancellation /
# overload / drain / panic-recovery scenarios plus the concurrent-query
# stress test, all under the race detector.
faults:
	$(GO) test -race -timeout 120s ./internal/faults
	$(GO) test -race -timeout 120s \
		-run 'Ctx|Cancel|Deadline|Degrade|Overload|Drain|Panic|Stuck|Robust|BadRequest|Malformed|Stress|WriteJSON|ExactParity' \
		./internal/parallel ./internal/engine ./internal/core ./internal/server

# Short mode skips the slowest end-to-end experiment tests.
test-short:
	$(GO) test -short ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every paper figure at full scale (~10 min, single core).
experiments:
	$(GO) run ./cmd/experiments -all

experiments-quick:
	$(GO) run ./cmd/experiments -all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/skewexplorer
	$(GO) run ./examples/sumoutliers
	$(GO) run ./examples/workloadtuned
	$(GO) run ./examples/salesdashboard

fuzz:
	$(GO) test ./internal/sqlparse -fuzz FuzzParse -fuzztime 30s

clean:
	$(GO) clean ./...
